"""CSV and JSONL round-trip for connection records.

Traces at the default experiment scale run to a few million records, so the
readers stream line by line instead of loading whole files eagerly.  Paths
ending in ``.gz`` are compressed/decompressed transparently — month-scale
CDR archives are always shipped gzipped.
"""

from __future__ import annotations

import csv
import gzip
import json
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path
from typing import IO, Any, cast

from repro.cdr.errors import CDRValidationError
from repro.cdr.records import ConnectionRecord

_CSV_FIELDS = ("start", "car_id", "cell_id", "carrier", "technology", "duration")


def _open_text(path: str | Path, mode: str) -> IO[str]:
    """Open a text file, transparently gzipped when the suffix is .gz."""
    newline = "" if "csv" in str(path) else None
    if str(path).endswith(".gz"):
        return cast("IO[str]", gzip.open(path, mode + "t", newline=newline))
    return open(path, mode, newline=newline)


def write_records_csv(path: str | Path, records: Iterable[ConnectionRecord]) -> int:
    """Write records to CSV; returns the number of rows written."""
    count = 0
    with _open_text(path, "w") as f:
        writer = csv.writer(f)
        writer.writerow(_CSV_FIELDS)
        for rec in records:
            writer.writerow(
                [rec.start, rec.car_id, rec.cell_id, rec.carrier, rec.technology, rec.duration]
            )
            count += 1
    return count


def read_records_csv(path: str | Path) -> Iterator[ConnectionRecord]:
    """Stream records from a CSV file written by :func:`write_records_csv`."""
    with _open_text(path, "r") as f:
        reader = csv.DictReader(f)
        if reader.fieldnames is None or set(_CSV_FIELDS) - set(reader.fieldnames):
            raise CDRValidationError(
                f"CSV at {path} is missing required columns {_CSV_FIELDS}"
            )
        for row in reader:
            yield _record_from_mapping(row, source=str(path))


def write_records_jsonl(path: str | Path, records: Iterable[ConnectionRecord]) -> int:
    """Write records as one JSON object per line; returns the row count."""
    count = 0
    with _open_text(path, "w") as f:
        for rec in records:
            f.write(
                json.dumps(
                    {
                        "start": rec.start,
                        "car_id": rec.car_id,
                        "cell_id": rec.cell_id,
                        "carrier": rec.carrier,
                        "technology": rec.technology,
                        "duration": rec.duration,
                    }
                )
            )
            f.write("\n")
            count += 1
    return count


def read_records_jsonl(path: str | Path) -> Iterator[ConnectionRecord]:
    """Stream records from a JSONL file written by :func:`write_records_jsonl`."""
    with _open_text(path, "r") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CDRValidationError(
                    f"{path}:{line_no}: invalid JSON: {exc}"
                ) from exc
            yield _record_from_mapping(obj, source=f"{path}:{line_no}")


def _record_from_mapping(obj: Mapping[str, Any], source: str) -> ConnectionRecord:
    try:
        return ConnectionRecord(
            start=float(obj["start"]),
            car_id=str(obj["car_id"]),
            cell_id=int(obj["cell_id"]),
            carrier=str(obj["carrier"]),
            technology=str(obj["technology"]),
            duration=float(obj["duration"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CDRValidationError(f"{source}: malformed record: {exc}") from exc


def write_records_daily(
    directory: str | Path,
    records: Iterable[ConnectionRecord],
    compress: bool = True,
) -> dict[int, int]:
    """Partition a trace into one CSV per study day, as CDR feeds arrive.

    Records land in ``<directory>/day-<NNN>.csv[.gz]`` keyed by the day
    their connection *started*.  Returns ``{day: rows written}``.  Input
    order within a day is preserved; days are written in ascending order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    per_day: dict[int, list[ConnectionRecord]] = {}
    for rec in records:
        per_day.setdefault(int(rec.start // 86_400), []).append(rec)
    suffix = ".csv.gz" if compress else ".csv"
    counts: dict[int, int] = {}
    for day in sorted(per_day):
        path = directory / f"day-{day:03d}{suffix}"
        counts[day] = write_records_csv(path, per_day[day])
    return counts


def read_records_daily(directory: str | Path) -> Iterator[ConnectionRecord]:
    """Stream a daily-partitioned trace back in day order.

    Reads every ``day-*.csv``/``day-*.csv.gz`` under ``directory`` sorted by
    filename, yielding records in the same global order
    :func:`write_records_daily` received them (given per-day sorted input).
    """
    directory = Path(directory)
    paths = sorted(
        p
        for p in directory.iterdir()
        if p.name.startswith("day-") and (p.suffix == ".csv" or p.name.endswith(".csv.gz"))
    )
    if not paths:
        raise CDRValidationError(f"no day-*.csv[.gz] files under {directory}")
    for path in paths:
        yield from read_records_csv(path)
