"""CSV and JSONL round-trip for connection records.

Traces at the default experiment scale run to a few million records, so the
readers stream line by line instead of loading whole files eagerly.  Paths
ending in ``.gz`` are compressed/decompressed transparently — month-scale
CDR archives are always shipped gzipped.

Two reading tiers share each text format:

* ``read_records_*`` yield one :class:`ConnectionRecord` per line — the
  legacy path, kept for record-at-a-time consumers.
* ``read_columnar_*`` parse in line blocks straight into a
  :class:`~repro.cdr.columnar.ColumnarCDRBatch` — no record objects, one
  vectorized numeric parse per block.  This is the fallback ingest path
  for legacy text traces; freshly generated traces skip text entirely via
  the binary ``.cdrz`` store (:mod:`repro.cdr.store`).
"""

from __future__ import annotations

import csv
import gzip
import json
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path
from typing import IO, Any, cast

import numpy as np

from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.errors import CDRValidationError
from repro.cdr.records import CDRBatch, ConnectionRecord

_CSV_FIELDS = ("start", "car_id", "cell_id", "carrier", "technology", "duration")

#: Lines per parse block of the columnar text readers; bounds peak memory
#: while keeping the per-block numpy parse large enough to amortize.
_BLOCK_LINES = 131_072


def _format_stem(path: str | Path) -> str:
    """The filename with a trailing ``.gz`` stripped: what decides the format.

    Only the *suffix* of the final path component may decide anything —
    matching substrings of the whole path (``"csv" in str(path)``) would
    let a directory named ``csvdata/`` silently flip the newline handling
    of the JSONL files inside it.
    """
    name = Path(path).name
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    return name


def _open_text(path: str | Path, mode: str) -> IO[str]:
    """Open a text file, transparently gzipped when the suffix is .gz."""
    newline = "" if _format_stem(path).endswith(".csv") else None
    if str(path).endswith(".gz"):
        return cast("IO[str]", gzip.open(path, mode + "t", newline=newline))
    return open(path, mode, newline=newline)


def write_records_csv(path: str | Path, records: Iterable[ConnectionRecord]) -> int:
    """Write records to CSV; returns the number of rows written."""
    count = 0
    with _open_text(path, "w") as f:
        writer = csv.writer(f)
        writer.writerow(_CSV_FIELDS)
        for rec in records:
            writer.writerow(
                [rec.start, rec.car_id, rec.cell_id, rec.carrier, rec.technology, rec.duration]
            )
            count += 1
    return count


def read_records_csv(path: str | Path) -> Iterator[ConnectionRecord]:
    """Stream records from a CSV file written by :func:`write_records_csv`."""
    with _open_text(path, "r") as f:
        reader = csv.DictReader(f)
        if reader.fieldnames is None or set(_CSV_FIELDS) - set(reader.fieldnames):
            raise CDRValidationError(
                f"CSV at {path} is missing required columns {_CSV_FIELDS}"
            )
        for row in reader:
            yield _record_from_mapping(row, source=str(path))


def write_records_jsonl(path: str | Path, records: Iterable[ConnectionRecord]) -> int:
    """Write records as one JSON object per line; returns the row count."""
    count = 0
    with _open_text(path, "w") as f:
        for rec in records:
            f.write(
                json.dumps(
                    {
                        "start": rec.start,
                        "car_id": rec.car_id,
                        "cell_id": rec.cell_id,
                        "carrier": rec.carrier,
                        "technology": rec.technology,
                        "duration": rec.duration,
                    }
                )
            )
            f.write("\n")
            count += 1
    return count


def read_records_jsonl(path: str | Path) -> Iterator[ConnectionRecord]:
    """Stream records from a JSONL file written by :func:`write_records_jsonl`."""
    with _open_text(path, "r") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CDRValidationError(
                    f"{path}:{line_no}: invalid JSON: {exc}"
                ) from exc
            yield _record_from_mapping(obj, source=f"{path}:{line_no}")


def _record_from_mapping(obj: Mapping[str, Any], source: str) -> ConnectionRecord:
    try:
        return ConnectionRecord(
            start=float(obj["start"]),
            car_id=str(obj["car_id"]),
            cell_id=int(obj["cell_id"]),
            carrier=str(obj["carrier"]),
            technology=str(obj["technology"]),
            duration=float(obj["duration"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CDRValidationError(f"{source}: malformed record: {exc}") from exc


def _columns_from_text(
    start: list[str],
    duration: list[str],
    cell_id: list[str],
    car_id: list[str],
    carrier: list[str],
    technology: list[str],
    source: str,
) -> ColumnarCDRBatch:
    """Vectorized numeric parse + dictionary encoding of collected columns.

    ``np.asarray(dtype=...)`` parses string columns in C (correctly
    rounded for float64, so text round-trips are bit-exact), replacing a
    Python ``float()``/``int()`` call per field.
    """
    try:
        start_arr = np.asarray(start, dtype=np.float64)
        duration_arr = np.asarray(duration, dtype=np.float64)
        cell_arr = np.asarray(cell_id, dtype=np.int64)
    except (ValueError, OverflowError) as exc:
        raise CDRValidationError(f"{source}: malformed numeric column: {exc}") from exc
    batch = ColumnarCDRBatch.from_arrays(
        start_arr, duration_arr, cell_arr, car_id, carrier, technology
    )
    _validate_columns(batch, source)
    return batch


def _validate_columns(batch: ColumnarCDRBatch, source: str) -> None:
    """The :class:`ConnectionRecord` invariants, checked as array ops."""
    if bool(np.any(batch.duration < 0)):
        row = int(np.flatnonzero(batch.duration < 0)[0])
        raise CDRValidationError(
            f"{source}: record duration must be non-negative, "
            f"got {batch.duration[row]} at row {row}"
        )
    if "" in batch.car_ids:
        raise CDRValidationError(f"{source}: record car_id must be non-empty")


def _csv_rows_fast(
    lines: list[str], path: str | Path, line_offset: int
) -> list[list[str]]:
    """Split plain CSV lines, falling back to :mod:`csv` when quoted."""
    rows: list[list[str]] = []
    for i, line in enumerate(lines):
        line = line.rstrip("\r\n")
        if not line:
            continue
        if '"' in line:
            parsed = next(iter(csv.reader([line])))
        else:
            parsed = line.split(",")
        if len(parsed) != len(_CSV_FIELDS):
            raise CDRValidationError(
                f"{path}:{line_offset + i}: expected {len(_CSV_FIELDS)} "
                f"fields, got {len(parsed)}"
            )
        rows.append(parsed)
    return rows


def read_columnar_csv(path: str | Path) -> ColumnarCDRBatch:
    """Load a CSV trace block-wise into a columnar batch — no record objects.

    Requires the column order :func:`write_records_csv` produces; the
    line-oriented fast split falls back to the :mod:`csv` parser for
    quoted lines, so anything the writer can emit reads back.  Raises
    :class:`CDRValidationError` on malformed input, like the record
    reader.
    """
    blocks: list[ColumnarCDRBatch] = []
    with _open_text(path, "r") as f:
        header = f.readline()
        fields = tuple(next(iter(csv.reader([header])), [])) if header else ()
        if fields != _CSV_FIELDS:
            if not fields or set(_CSV_FIELDS) - set(fields):
                raise CDRValidationError(
                    f"CSV at {path} is missing required columns {_CSV_FIELDS}"
                )
            # Reordered or extra columns: take the mapped (DictReader) path,
            # still columnar, still no record objects.
            return _read_columnar_csv_mapped(path)
        line_no = 2
        while True:
            lines = f.readlines(_BLOCK_LINES * 64)
            if not lines:
                break
            rows = _csv_rows_fast(lines, path, line_no)
            line_no += len(lines)
            if not rows:
                continue
            columns = list(zip(*rows))
            blocks.append(
                _columns_from_text(
                    list(columns[0]),
                    list(columns[5]),
                    list(columns[2]),
                    list(columns[1]),
                    list(columns[3]),
                    list(columns[4]),
                    str(path),
                )
            )
    return ColumnarCDRBatch.concatenate(blocks)


def _read_columnar_csv_mapped(path: str | Path) -> ColumnarCDRBatch:
    """Column-collecting CSV reader for files with non-canonical column order."""
    columns: dict[str, list[str]] = {name: [] for name in _CSV_FIELDS}
    with _open_text(path, "r") as f:
        for row in csv.DictReader(f):
            try:
                for name in _CSV_FIELDS:
                    value = row[name]
                    if value is None:
                        raise CDRValidationError(
                            f"{path}: short row, missing {name!r}"
                        )
                    columns[name].append(value)
            except KeyError as exc:
                raise CDRValidationError(
                    f"{path}: malformed record: {exc}"
                ) from exc
    return _columns_from_text(
        columns["start"],
        columns["duration"],
        columns["cell_id"],
        columns["car_id"],
        columns["carrier"],
        columns["technology"],
        str(path),
    )


def read_columnar_jsonl(path: str | Path) -> ColumnarCDRBatch:
    """Load a JSONL trace block-wise into a columnar batch — no record objects."""
    start: list[str] = []
    duration: list[str] = []
    cell_id: list[str] = []
    car_id: list[str] = []
    carrier: list[str] = []
    technology: list[str] = []
    blocks: list[ColumnarCDRBatch] = []

    def _flush() -> None:
        if start:
            blocks.append(
                _columns_from_text(
                    start, duration, cell_id, car_id, carrier, technology, str(path)
                )
            )
            for column in (start, duration, cell_id, car_id, carrier, technology):
                column.clear()

    with _open_text(path, "r") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                start.append(str(obj["start"]))
                duration.append(str(obj["duration"]))
                cell_id.append(str(obj["cell_id"]))
                car_id.append(str(obj["car_id"]))
                carrier.append(str(obj["carrier"]))
                technology.append(str(obj["technology"]))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise CDRValidationError(
                    f"{path}:{line_no}: malformed record: {exc}"
                ) from exc
            if len(start) >= _BLOCK_LINES:
                _flush()
    _flush()
    return ColumnarCDRBatch.concatenate(blocks)


def trace_format(path: str | Path) -> str:
    """Classify a trace path as ``"cdrz"``, ``"jsonl"`` or ``"csv"``.

    Decided by the filename suffix with ``.gz`` stripped; anything that is
    neither ``.cdrz`` nor ``.jsonl`` is treated as CSV, matching the
    writers' historical default.
    """
    stem = _format_stem(path)
    if stem.endswith(".cdrz"):
        return "cdrz"
    if stem.endswith(".jsonl"):
        return "jsonl"
    return "csv"


def read_columnar_auto(path: str | Path) -> ColumnarCDRBatch:
    """Load any supported trace format columnar, without record objects.

    A directory is treated as a sharded ``.cdrz`` trace (the layout
    :func:`repro.cdr.store.write_sharded_cdrz` produces) and concatenated
    in shard order.
    """
    if Path(path).is_dir():
        from repro.cdr.store import read_batch_cdrz, resolve_shards

        return ColumnarCDRBatch.concatenate(
            [read_batch_cdrz(shard) for shard in resolve_shards(path)]
        )
    fmt = trace_format(path)
    if fmt == "cdrz":
        from repro.cdr.store import read_batch_cdrz

        return read_batch_cdrz(path)
    if fmt == "jsonl":
        return read_columnar_jsonl(path)
    return read_columnar_csv(path)


def load_trace(path: str | Path) -> CDRBatch:
    """Load any supported trace into a record-level :class:`CDRBatch`.

    The CLI entry point for analysis commands: ``.cdrz`` files (or shard
    directories) load through the binary store — single files honoring
    their sortedness flag — and text formats through the columnar block
    parsers; either way ingest is vectorized and the batch arrives with
    its columnar view attached for the array engine.
    """
    if not Path(path).is_dir() and trace_format(path) == "cdrz":
        from repro.cdr.store import read_cdr_batch

        return read_cdr_batch(path)
    return read_columnar_auto(path).to_batch()


def write_records_daily(
    directory: str | Path,
    records: Iterable[ConnectionRecord],
    compress: bool = True,
) -> dict[int, int]:
    """Partition a trace into one CSV per study day, as CDR feeds arrive.

    Records land in ``<directory>/day-<NNN>.csv[.gz]`` keyed by the day
    their connection *started*.  Returns ``{day: rows written}``.  Input
    order within a day is preserved; days are written in ascending order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    per_day: dict[int, list[ConnectionRecord]] = {}
    for rec in records:
        per_day.setdefault(int(rec.start // 86_400), []).append(rec)
    suffix = ".csv.gz" if compress else ".csv"
    counts: dict[int, int] = {}
    for day in sorted(per_day):
        path = directory / f"day-{day:03d}{suffix}"
        counts[day] = write_records_csv(path, per_day[day])
    return counts


def read_records_daily(directory: str | Path) -> Iterator[ConnectionRecord]:
    """Stream a daily-partitioned trace back in day order.

    Reads every ``day-*.csv``/``day-*.csv.gz`` under ``directory`` sorted by
    filename, yielding records in the same global order
    :func:`write_records_daily` received them (given per-day sorted input).
    """
    directory = Path(directory)
    paths = sorted(
        p
        for p in directory.iterdir()
        if p.name.startswith("day-") and (p.suffix == ".csv" or p.name.endswith(".csv.gz"))
    )
    if not paths:
        raise CDRValidationError(f"no day-*.csv[.gz] files under {directory}")
    for path in paths:
        yield from read_records_csv(path)
