"""Binary columnar CDR store: the ``.cdrz`` on-disk format.

A ``.cdrz`` file is one NPZ container (an uncompressed ZIP of ``.npy``
members, loadable with plain ``np.load``) holding the six
:class:`~repro.cdr.columnar.ColumnarCDRBatch` arrays, the three dictionary
tables for car/carrier/technology codes, and a JSON header with a schema
version, the row count and a sortedness flag so ``assume_sorted`` survives
the round trip.  Because every member is stored (never deflated) and the
members' byte ranges are recoverable from the ZIP directory, the numeric
columns memory-map straight out of the container: a full-batch load is a
handful of header reads plus six ``np.memmap`` views — no parsing, no
row-by-row Python, and no :class:`~repro.cdr.records.ConnectionRecord`
objects ever constructed (``repro.cdr.records.count_record_constructions``
asserts exactly that in the tests).

The writer emits members itself (fixed timestamps, fixed order, explicit
``ZIP_STORED``) so two writes of the same batch produce byte-identical
files, which the determinism tooling (repro-lint, the parallel generator's
parity checksums) can diff directly.

Multi-shard traces are a directory of ``shard-NNNNN.cdrz`` files;
:func:`iter_cdrz_chunks` streams any file, directory or explicit path list
as bounded-size :class:`ColumnarCDRBatch` chunks whose arrays are *slices*
of the memory map — the out-of-core path of
:meth:`repro.core.streaming.StreamingAnalyzer.consume_columnar`.
"""

from __future__ import annotations

import json
import struct
import zipfile
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO

import numpy as np
import numpy.typing as npt

from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.errors import CDRValidationError
from repro.cdr.records import CDRBatch

#: Current ``.cdrz`` schema version; bump on any layout change.
SCHEMA_VERSION = 1

#: Canonical file suffix; readers accept any NPZ-shaped container.
CDRZ_SUFFIX = ".cdrz"

#: Member holding the JSON header (a 0-d unicode array).
_HEADER_KEY = "header"

#: Numeric columns, written in this order, with their required dtypes.
_COLUMN_DTYPES: tuple[tuple[str, np.dtype[Any]], ...] = (
    ("start", np.dtype(np.float64)),
    ("duration", np.dtype(np.float64)),
    ("cell_id", np.dtype(np.int64)),
    ("car_code", np.dtype(np.int32)),
    ("carrier_code", np.dtype(np.int16)),
    ("tech_code", np.dtype(np.int16)),
)

#: Dictionary tables, written after the columns, as unicode arrays.
_VOCAB_KEYS = ("car_ids", "carriers", "technologies")

#: Fixed DOS timestamp for every member: byte-identical rewrites.
_MEMBER_DATE_TIME = (1980, 1, 1, 0, 0, 0)

#: Default chunk size of the streaming reader (rows per chunk).
DEFAULT_CHUNK_ROWS = 262_144

#: Filename pattern of sharded traces written by :func:`write_sharded_cdrz`.
_SHARD_NAME = "shard-{index:05d}.cdrz"


@dataclass(frozen=True)
class CdrzHeader:
    """Parsed ``.cdrz`` header fields.

    Attributes
    ----------
    schema_version:
        Layout version of the container; readers reject versions they do
        not know (forward compatibility is explicit, never silent).
    n_rows:
        Row count of every column array.
    sorted:
        True when the rows are in exact record order (start, car, cell,
        carrier, technology, duration) — the order ``CDRBatch`` maintains —
        so a load can pass ``assume_sorted=True`` and skip the O(n log n)
        construction sort.
    t_min / t_max:
        Earliest record start and latest record end in the shard, in study
        seconds, or ``None`` for an empty shard (and for containers written
        before these fields existed).  They let manifest-level planning —
        ``repro-cars inspect`` day spans, the service's ingest detection —
        reason about a shard's calendar coverage from the header alone,
        without paging in any column data.
    """

    schema_version: int
    n_rows: int
    sorted: bool
    t_min: float | None = None
    t_max: float | None = None

    def to_json(self) -> str:
        """Serialize with sorted keys, for byte-stable containers."""
        return json.dumps(
            {
                "format": "cdrz",
                "n_rows": self.n_rows,
                "schema_version": self.schema_version,
                "sorted": self.sorted,
                "t_max": self.t_max,
                "t_min": self.t_min,
            },
            sort_keys=True,
        )


@dataclass(frozen=True)
class CdrzMemberInfo:
    """Shape/dtype/storage facts of one container member, for ``inspect``."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    nbytes: int
    compressed: bool


@dataclass(frozen=True)
class CdrzInfo:
    """Everything ``repro inspect`` reports about a ``.cdrz`` file."""

    path: str
    file_bytes: int
    header: CdrzHeader
    members: tuple[CdrzMemberInfo, ...]
    n_cars: int
    n_carriers: int
    n_technologies: int


def is_record_sorted(batch: ColumnarCDRBatch) -> bool:
    """Whether rows are already in exact record order, checked vectorized.

    One adjacent-row lexicographic comparison over the six sort keys —
    O(n) with no Python loop over rows, so writers can auto-detect the
    sortedness flag instead of trusting the caller.  Codes compare like
    their strings because the vocabularies are sorted.
    """
    n = len(batch)
    if n <= 1:
        return True
    keys: tuple[npt.NDArray[Any], ...] = (
        batch.start,
        batch.car_code,
        batch.cell_id,
        batch.carrier_code,
        batch.tech_code,
        batch.duration,
    )
    still_tied = np.ones(n - 1, dtype=bool)
    for key in keys:
        head, tail = key[:-1], key[1:]
        if bool(np.any(still_tied & (head > tail))):
            return False
        still_tied &= head == tail
        if not still_tied.any():
            return True
    return True


def _write_member(zf: zipfile.ZipFile, name: str, array: npt.NDArray[Any]) -> None:
    """Append one ``.npy`` member, stored, with a fixed timestamp."""
    info = zipfile.ZipInfo(name + ".npy", date_time=_MEMBER_DATE_TIME)
    info.compress_type = zipfile.ZIP_STORED
    info.external_attr = 0o644 << 16
    with zf.open(info, "w") as member:
        # write_array serializes any layout as C-order bytes itself; wrapping
        # in ascontiguousarray would promote the 0-d header to 1-d.
        np.lib.format.write_array(member, array, allow_pickle=False)


def _vocab_array(vocab: Sequence[str]) -> npt.NDArray[Any]:
    """Dictionary table as a fixed-width unicode array (pickle-free)."""
    return np.asarray(list(vocab), dtype=np.str_)


def write_batch_cdrz(
    path: str | Path,
    batch: ColumnarCDRBatch,
    *,
    assume_sorted: bool | None = None,
) -> int:
    """Write a columnar batch as one ``.cdrz`` container; returns the rows.

    ``assume_sorted`` records whether the rows are in exact record order.
    ``None`` (the default) auto-detects with a vectorized adjacent-row
    check; pass ``True``/``False`` only when the caller can prove it —
    a wrong ``True`` would make loads skip a sort they needed.
    """
    if assume_sorted is None:
        assume_sorted = is_record_sorted(batch)
    t_min: float | None = None
    t_max: float | None = None
    if len(batch):
        t_min = float(batch.start.min())
        t_max = float((batch.start + batch.duration).max())
    header = CdrzHeader(
        schema_version=SCHEMA_VERSION,
        n_rows=len(batch),
        sorted=assume_sorted,
        t_min=t_min,
        t_max=t_max,
    )
    with open(path, "wb") as fh:
        with zipfile.ZipFile(fh, "w", zipfile.ZIP_STORED) as zf:
            _write_member(zf, _HEADER_KEY, np.asarray(header.to_json()))
            for name, dtype in _COLUMN_DTYPES:
                column: npt.NDArray[Any] = getattr(batch, name)
                _write_member(zf, name, column.astype(dtype, copy=False))
            _write_member(zf, "car_ids", _vocab_array(batch.car_ids))
            _write_member(zf, "carriers", _vocab_array(batch.carriers))
            _write_member(zf, "technologies", _vocab_array(batch.technologies))
    return header.n_rows


def write_sharded_cdrz(
    directory: str | Path,
    batch: ColumnarCDRBatch,
    *,
    shard_rows: int,
    assume_sorted: bool | None = None,
) -> list[Path]:
    """Split a batch row-wise into ``shard-NNNNN.cdrz`` files under a directory.

    Shards are contiguous row ranges (zero-copy slices), so reading them
    back in filename order reproduces the exact input row stream; every
    shard carries the full dictionary tables.  Returns the written paths
    in order.  An empty batch still writes one empty shard so the
    directory round-trips.
    """
    if shard_rows < 1:
        raise CDRValidationError(f"shard_rows must be >= 1, got {shard_rows}")
    if assume_sorted is None:
        assume_sorted = is_record_sorted(batch)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    n = len(batch)
    for index, lo in enumerate(range(0, max(n, 1), shard_rows)):
        shard = batch.rows(lo, min(lo + shard_rows, n))
        shard_path = directory / _SHARD_NAME.format(index=index)
        write_batch_cdrz(shard_path, shard, assume_sorted=assume_sorted)
        paths.append(shard_path)
    return paths


def _parse_header(raw: object, path: str | Path) -> CdrzHeader:
    """Decode and validate the JSON header member."""
    try:
        fields = json.loads(str(raw))
    except json.JSONDecodeError as exc:
        raise CDRValidationError(f"{path}: malformed cdrz header: {exc}") from exc
    if not isinstance(fields, dict) or fields.get("format") != "cdrz":
        raise CDRValidationError(f"{path}: not a cdrz container header: {fields!r}")
    version = fields.get("schema_version")
    if version != SCHEMA_VERSION:
        raise CDRValidationError(
            f"{path}: unsupported cdrz schema version {version!r} "
            f"(this reader supports {SCHEMA_VERSION})"
        )
    n_rows = fields.get("n_rows")
    if not isinstance(n_rows, int) or n_rows < 0:
        raise CDRValidationError(f"{path}: invalid cdrz row count {n_rows!r}")
    spans: dict[str, float | None] = {}
    for key in ("t_min", "t_max"):
        value = fields.get(key)
        if value is not None and not isinstance(value, (int, float)):
            raise CDRValidationError(f"{path}: invalid cdrz {key} {value!r}")
        spans[key] = None if value is None else float(value)
    return CdrzHeader(
        schema_version=version,
        n_rows=n_rows,
        sorted=bool(fields.get("sorted")),
        t_min=spans["t_min"],
        t_max=spans["t_max"],
    )


def _member_payload_span(
    zf: zipfile.ZipFile, fh: BinaryIO, name: str
) -> tuple[tuple[int, ...], np.dtype[Any], int] | None:
    """Locate a stored member's array payload inside the container.

    Returns ``(shape, dtype, absolute offset)`` of the raw array bytes, or
    ``None`` when the member cannot be memory-mapped (deflated member, or
    an ``.npy`` version this code does not parse) and the caller must fall
    back to a buffered ``np.load``.
    """
    try:
        info = zf.getinfo(name + ".npy")
    except KeyError:
        return None
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    fh.seek(info.header_offset)
    local = fh.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        return None
    name_len, extra_len = struct.unpack("<HH", local[26:30])
    fh.seek(info.header_offset + 30 + name_len + extra_len)
    version = np.lib.format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    else:
        return None
    if fortran or dtype.hasobject:
        return None
    return shape, dtype, fh.tell()


def _mmap_column(
    path: Path, zf: zipfile.ZipFile, fh: BinaryIO, name: str, dtype: np.dtype[Any]
) -> npt.NDArray[Any] | None:
    """Memory-map one numeric column, or ``None`` to request the fallback."""
    span = _member_payload_span(zf, fh, name)
    if span is None:
        return None
    shape, stored_dtype, offset = span
    if stored_dtype != dtype or len(shape) != 1:
        return None
    if shape[0] == 0:
        return np.empty(0, dtype=dtype)
    view: npt.NDArray[Any] = np.asarray(
        np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=shape)
    )
    return view


def read_cdrz(
    path: str | Path, *, mmap: bool = True
) -> tuple[ColumnarCDRBatch, CdrzHeader]:
    """Load a ``.cdrz`` container as ``(batch, header)``.

    With ``mmap=True`` (the default) the six numeric columns are
    ``np.memmap`` views into the file — the load reads only the ZIP
    directory, the header and the dictionary tables, and row data is paged
    in lazily on first touch.  Containers whose members turn out to be
    compressed (written by a foreign tool with ``np.savez_compressed``)
    fall back to a buffered load transparently.

    No :class:`~repro.cdr.records.ConnectionRecord` objects are built on
    this path.
    """
    path = Path(path)
    try:
        npz = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise CDRValidationError(f"{path}: unreadable cdrz container: {exc}") from exc
    with npz:
        if _HEADER_KEY not in npz.files:
            raise CDRValidationError(f"{path}: cdrz container missing header member")
        header = _parse_header(npz[_HEADER_KEY][()], path)
        vocabs: dict[str, tuple[str, ...]] = {}
        for key in _VOCAB_KEYS:
            if key not in npz.files:
                raise CDRValidationError(f"{path}: cdrz container missing {key!r}")
            vocabs[key] = tuple(str(v) for v in npz[key].tolist())
        columns: dict[str, npt.NDArray[Any]] = {}
        if mmap:
            with zipfile.ZipFile(path) as zf, open(path, "rb") as fh:
                for name, dtype in _COLUMN_DTYPES:
                    view = _mmap_column(path, zf, fh, name, dtype)
                    if view is None:
                        columns.clear()
                        break
                    columns[name] = view
        if not columns:
            for name, dtype in _COLUMN_DTYPES:
                if name not in npz.files:
                    raise CDRValidationError(f"{path}: cdrz container missing {name!r}")
                columns[name] = npz[name].astype(dtype, copy=False)
    for name, column in columns.items():
        if len(column) != header.n_rows:
            raise CDRValidationError(
                f"{path}: column {name!r} has {len(column)} rows, "
                f"header says {header.n_rows}"
            )
    batch = ColumnarCDRBatch(
        columns["start"],
        columns["duration"],
        columns["cell_id"],
        columns["car_code"],
        columns["carrier_code"],
        columns["tech_code"],
        vocabs["car_ids"],
        vocabs["carriers"],
        vocabs["technologies"],
    )
    return batch, header


def read_batch_cdrz(path: str | Path, *, mmap: bool = True) -> ColumnarCDRBatch:
    """Load just the columnar batch from a ``.cdrz`` container."""
    batch, _ = read_cdrz(path, mmap=mmap)
    return batch


def read_cdr_batch(path: str | Path, *, mmap: bool = True) -> CDRBatch:
    """Load a ``.cdrz`` trace as a record-level :class:`CDRBatch`.

    This is the bridge to the record-based pipeline: records *are*
    materialized here (the pipeline consumes objects), but the header's
    sortedness flag lets an already-ordered trace skip the construction
    sort, and the batch keeps its columnar view so the vectorized engine
    never re-encodes.
    """
    col, header = read_cdrz(path, mmap=mmap)
    if not header.sorted:
        return col.to_batch()
    batch = CDRBatch(col.to_records(), assume_sorted=True)
    batch._columnar = col
    return batch


@dataclass(frozen=True)
class ShardManifestEntry:
    """Header-level facts about one shard, in fold order.

    ``t_min``/``t_max`` mirror the header's time-span fields and are
    ``None`` for empty shards or pre-span containers.
    """

    path: str
    n_rows: int
    sorted: bool
    t_min: float | None = None
    t_max: float | None = None


def read_cdrz_header(path: str | Path) -> CdrzHeader:
    """Read just the header member of a container (no column data paged in)."""
    try:
        npz = np.load(Path(path), allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise CDRValidationError(f"{path}: unreadable cdrz container: {exc}") from exc
    with npz:
        if _HEADER_KEY not in npz.files:
            raise CDRValidationError(f"{path}: cdrz container missing header member")
        return _parse_header(npz[_HEADER_KEY][()], path)


def shard_manifest(
    source: str | Path | Sequence[str | Path],
) -> list[ShardManifestEntry]:
    """Describe every shard of a trace, in the order a reduce must fold them.

    The manifest is the planning surface of the map-reduce layer: row
    counts per shard (for balancing expectations), the sortedness flags
    (every shard of a start-ordered trace should carry ``sorted=True``),
    and — critically — the fold order itself, which is
    :func:`resolve_shards` order (filename order for a directory).  Only
    headers are read; no column data is paged in.
    """
    entries = []
    for path in resolve_shards(source):
        header = read_cdrz_header(path)
        entries.append(
            ShardManifestEntry(
                path=str(path),
                n_rows=header.n_rows,
                sorted=header.sorted,
                t_min=header.t_min,
                t_max=header.t_max,
            )
        )
    return entries


def resolve_shards(source: str | Path | Sequence[str | Path]) -> list[Path]:
    """Normalize a file, directory or path list into an ordered shard list.

    Directories contribute their ``*.cdrz`` files sorted by name, which is
    the order :func:`write_sharded_cdrz` numbers them in; explicit lists
    are kept as given.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.is_dir():
            shards = sorted(path.glob("*" + CDRZ_SUFFIX))
            if not shards:
                raise CDRValidationError(f"no *{CDRZ_SUFFIX} shards under {path}")
            return shards
        return [path]
    return [Path(p) for p in source]


def iter_cdrz_chunks(
    source: str | Path | Sequence[str | Path],
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    mmap: bool = True,
) -> Iterator[ColumnarCDRBatch]:
    """Stream one or many ``.cdrz`` shards as bounded columnar chunks.

    Chunks are contiguous row slices of each shard's (memory-mapped)
    columns, at most ``chunk_rows`` long, yielded in shard order then row
    order — the same global row stream the shards were written from.
    Empty shards yield nothing.  Peak memory is one chunk's worth of
    touched pages, independent of trace size, which is what lets the
    out-of-core analyzer (:meth:`repro.core.streaming.StreamingAnalyzer.
    consume_columnar`) process month-scale traces on a laptop.
    """
    if chunk_rows < 1:
        raise CDRValidationError(f"chunk_rows must be >= 1, got {chunk_rows}")
    for path in resolve_shards(source):
        batch = read_batch_cdrz(path, mmap=mmap)
        for lo in range(0, len(batch), chunk_rows):
            yield batch.rows(lo, min(lo + chunk_rows, len(batch)))


def inspect_cdrz(path: str | Path) -> CdrzInfo:
    """Gather the facts ``repro inspect`` prints about a container."""
    path = Path(path)
    batch, header = read_cdrz(path, mmap=True)
    members: list[CdrzMemberInfo] = []
    with zipfile.ZipFile(path) as zf:
        infos = {info.filename: info for info in zf.infolist()}
    with np.load(path, allow_pickle=False) as npz:
        for name in npz.files:
            array = npz[name]
            zip_info = infos.get(name + ".npy")
            members.append(
                CdrzMemberInfo(
                    name=name,
                    dtype=str(array.dtype),
                    shape=tuple(array.shape),
                    nbytes=int(array.nbytes),
                    compressed=(
                        zip_info is not None
                        and zip_info.compress_type != zipfile.ZIP_STORED
                    ),
                )
            )
    return CdrzInfo(
        path=str(path),
        file_bytes=path.stat().st_size,
        header=header,
        members=tuple(members),
        n_cars=len(batch.car_ids),
        n_carriers=len(batch.carriers),
        n_technologies=len(batch.technologies),
    )
