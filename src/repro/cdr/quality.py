"""Data-quality diagnostics for raw CDR batches.

Section 3 of the paper *knows* its data pathologies (exactly-one-hour ghost
records, stuck modems, three days of partial loss) because the authors
inspected the feed.  This module automates that inspection: given a raw
batch it detects duration-spike artifacts, estimates the stuck-modem tail,
and flags days whose record volume drops anomalously against same-weekday
peers — producing the evidence that justifies each preprocessing rule.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.algorithms.timebins import StudyClock
from repro.cdr.records import CDRBatch


@dataclass(frozen=True)
class DurationSpike:
    """An over-represented exact duration value (e.g. exactly 3600 s)."""

    duration: float
    count: int
    #: How many times more frequent this value is than the local baseline.
    excess_factor: float


@dataclass(frozen=True)
class LossDayFinding:
    """A study day whose record volume is anomalously low."""

    day: int
    weekday: str
    records: int
    #: Median record count of the same weekday across the study.
    weekday_median: float

    @property
    def deficit(self) -> float:
        """Fraction of the expected volume missing on this day."""
        if self.weekday_median == 0:
            return 0.0
        return 1.0 - self.records / self.weekday_median


@dataclass
class QualityReport:
    """Everything the diagnostics found, with a text rendering."""

    n_records: int
    duration_spikes: list[DurationSpike] = field(default_factory=list)
    long_tail_fraction: float = 0.0
    loss_days: list[LossDayFinding] = field(default_factory=list)
    records_per_day: npt.NDArray[np.int64] = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    @property
    def clean(self) -> bool:
        """True when no artifact class was detected."""
        return (
            not self.duration_spikes
            and not self.loss_days
            and self.long_tail_fraction < 0.05
        )

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"records examined: {self.n_records:,}"]
        if self.duration_spikes:
            lines.append("duration spikes (ghost-record candidates):")
            for spike in self.duration_spikes:
                lines.append(
                    f"  {spike.duration:.0f} s x {spike.count} "
                    f"({spike.excess_factor:.0f}x local baseline)"
                )
        else:
            lines.append("duration spikes: none")
        lines.append(
            f"connections > 600 s: {self.long_tail_fraction:.1%} "
            "(stuck-modem tail; paper truncates at 600 s)"
        )
        if self.loss_days:
            lines.append("suspected data-loss days:")
            for finding in self.loss_days:
                lines.append(
                    f"  day {finding.day} ({finding.weekday}): "
                    f"{finding.records} records, "
                    f"{finding.deficit:.0%} below the {finding.weekday} median"
                )
        else:
            lines.append("suspected data-loss days: none")
        return "\n".join(lines)


def detect_duration_spikes(
    batch: CDRBatch,
    min_count: int = 20,
    min_excess: float = 10.0,
    resolution_s: float = 1.0,
) -> list[DurationSpike]:
    """Find exact duration values that are wildly over-represented.

    Durations are bucketed at ``resolution_s``; a bucket is a spike when it
    holds at least ``min_count`` records and exceeds the median count of its
    40 neighbouring buckets by ``min_excess``.  The paper's exactly-one-hour
    records are the canonical hit.
    """
    counts: Counter[int] = Counter(
        int(round(rec.duration / resolution_s)) for rec in batch
    )
    spikes: list[DurationSpike] = []
    for bucket, count in counts.items():
        if count < min_count:
            continue
        neighbours = [
            counts.get(bucket + offset, 0)
            for offset in range(-20, 21)
            if offset != 0
        ]
        baseline = max(float(np.median(neighbours)), 0.5)
        if count / baseline >= min_excess:
            spikes.append(
                DurationSpike(
                    duration=bucket * resolution_s,
                    count=count,
                    excess_factor=count / baseline,
                )
            )
    return sorted(spikes, key=lambda s: -s.count)


def long_tail_fraction(batch: CDRBatch, cutoff_s: float = 600.0) -> float:
    """Fraction of records whose duration exceeds ``cutoff_s``."""
    if len(batch) == 0:
        return 0.0
    return sum(rec.duration > cutoff_s for rec in batch) / len(batch)


def detect_loss_days(
    batch: CDRBatch,
    clock: StudyClock,
    deficit_threshold: float = 0.25,
) -> tuple[list[LossDayFinding], npt.NDArray[np.int64]]:
    """Flag days whose record volume falls short of the same-weekday median.

    Comparing against same-weekday peers keeps ordinary weekend dips from
    triggering; only days missing ``deficit_threshold`` or more of their
    expected volume are reported.
    """
    per_day = np.zeros(clock.n_days, dtype=np.int64)
    for rec in batch:
        day = clock.day_index(rec.start)
        if 0 <= day < clock.n_days:
            per_day[day] += 1
    findings: list[LossDayFinding] = []
    for weekday in range(7):
        days = clock.days_of_weekday(weekday)
        if len(days) < 3:
            continue
        median = float(np.median(per_day[days]))
        if median == 0:
            continue
        for day in days:
            if per_day[day] < (1.0 - deficit_threshold) * median:
                findings.append(
                    LossDayFinding(
                        day=day,
                        weekday=clock.weekday_name(day * 86400),
                        records=int(per_day[day]),
                        weekday_median=median,
                    )
                )
    return sorted(findings, key=lambda f: f.day), per_day


def assess_quality(
    batch: CDRBatch,
    clock: StudyClock,
    spike_min_count: int = 20,
    loss_deficit_threshold: float = 0.25,
) -> QualityReport:
    """Run every diagnostic and assemble the report."""
    spikes = detect_duration_spikes(batch, min_count=spike_min_count)
    loss_days, per_day = detect_loss_days(
        batch, clock, deficit_threshold=loss_deficit_threshold
    )
    return QualityReport(
        n_records=len(batch),
        duration_spikes=spikes,
        long_tail_fraction=long_tail_fraction(batch),
        loss_days=loss_days,
        records_per_day=per_day,
    )
