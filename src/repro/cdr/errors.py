"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class CDRValidationError(ReproError):
    """A connection record or batch failed validation."""


class TraceGenerationError(ReproError):
    """The synthetic trace generator was configured inconsistently."""
