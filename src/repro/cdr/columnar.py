"""Columnar CDR storage: the cheap-at-volume record container.

A :class:`ColumnarCDRBatch` holds the same six fields as a list of
:class:`~repro.cdr.records.ConnectionRecord` objects, but as NumPy arrays
plus small string vocabularies — tens of bytes per record become ~26, and
cleaning rules (ghost drop, truncation) and per-car grouping become single
vectorized operations instead of per-record Python.  It round-trips
losslessly to and from :class:`~repro.cdr.records.CDRBatch` and is the wire
format parallel trace-generation workers use to ship their shards back to
the parent process (arrays pickle far faster than dataclass instances).

Row order is whatever the source had; nothing here sorts implicitly.
``sorted()`` applies the exact record ordering (start, car, cell, carrier,
technology, duration) via one stable lexsort.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.cdr.errors import CDRValidationError
from repro.cdr.records import CDRBatch, ConnectionRecord


class ColumnarCDRBatch:
    """Connection records stored column-wise.

    ``car_code``, ``carrier_code`` and ``tech_code`` index into the sorted
    vocabularies ``car_ids``, ``carriers`` and ``technologies``; because the
    vocabularies are lexicographically sorted, comparing codes is the same
    as comparing the strings, which is what lets :meth:`sort_order` use a
    pure-integer lexsort.
    """

    __slots__ = (
        "start",
        "duration",
        "cell_id",
        "car_code",
        "carrier_code",
        "tech_code",
        "car_ids",
        "carriers",
        "technologies",
    )

    start: npt.NDArray[np.float64]
    duration: npt.NDArray[np.float64]
    cell_id: npt.NDArray[np.int64]
    car_code: npt.NDArray[np.int32]
    carrier_code: npt.NDArray[np.int16]
    tech_code: npt.NDArray[np.int16]
    car_ids: tuple[str, ...]
    carriers: tuple[str, ...]
    technologies: tuple[str, ...]

    def __init__(
        self,
        start: npt.ArrayLike,
        duration: npt.ArrayLike,
        cell_id: npt.ArrayLike,
        car_code: npt.ArrayLike,
        carrier_code: npt.ArrayLike,
        tech_code: npt.ArrayLike,
        car_ids: Sequence[str],
        carriers: Sequence[str],
        technologies: Sequence[str],
    ) -> None:
        self.start = np.asarray(start, dtype=np.float64)
        self.duration = np.asarray(duration, dtype=np.float64)
        self.cell_id = np.asarray(cell_id, dtype=np.int64)
        self.car_code = np.asarray(car_code, dtype=np.int32)
        self.carrier_code = np.asarray(carrier_code, dtype=np.int16)
        self.tech_code = np.asarray(tech_code, dtype=np.int16)
        self.car_ids = tuple(car_ids)
        self.carriers = tuple(carriers)
        self.technologies = tuple(technologies)
        n = len(self.start)
        for name in ("duration", "cell_id", "car_code", "carrier_code", "tech_code"):
            if len(getattr(self, name)) != n:
                raise CDRValidationError(
                    f"columnar batch column {name!r} has "
                    f"{len(getattr(self, name))} rows, expected {n}"
                )

    # -- construction --------------------------------------------------

    @classmethod
    def from_records(
        cls, records: Iterable[ConnectionRecord]
    ) -> "ColumnarCDRBatch":
        """Encode records column-wise, preserving their order."""
        records = records if isinstance(records, list) else list(records)
        n = len(records)
        start = np.fromiter((r.start for r in records), np.float64, count=n)
        duration = np.fromiter((r.duration for r in records), np.float64, count=n)
        cell_id = np.fromiter((r.cell_id for r in records), np.int64, count=n)
        car_ids, car_code = _encode([r.car_id for r in records])
        carriers, carrier_code = _encode([r.carrier for r in records])
        technologies, tech_code = _encode([r.technology for r in records])
        return cls(
            start,
            duration,
            cell_id,
            car_code,
            carrier_code,
            tech_code,
            car_ids,
            carriers,
            technologies,
        )

    @classmethod
    def from_arrays(
        cls,
        start: npt.ArrayLike,
        duration: npt.ArrayLike,
        cell_id: npt.ArrayLike,
        car_id: Sequence[str],
        carrier: Sequence[str],
        technology: Sequence[str],
    ) -> "ColumnarCDRBatch":
        """Encode raw per-row columns, preserving their order.

        The string columns are dictionary-encoded into sorted vocabularies
        exactly as :meth:`from_records` would; the numeric columns pass
        straight through.  This is the entry point for block parsers that
        never materialize :class:`~repro.cdr.records.ConnectionRecord`
        objects (``repro.cdr.io.read_columnar_csv`` and friends).
        """
        car_ids, car_code = _encode(list(car_id))
        carriers, carrier_code = _encode(list(carrier))
        technologies, tech_code = _encode(list(technology))
        return cls(
            start,
            duration,
            cell_id,
            car_code,
            carrier_code,
            tech_code,
            car_ids,
            carriers,
            technologies,
        )

    @classmethod
    def from_batch(cls, batch: CDRBatch) -> "ColumnarCDRBatch":
        """Columnar view of a batch (same row order: time-sorted)."""
        return batch.columnar()

    @classmethod
    def concatenate(
        cls, shards: Sequence["ColumnarCDRBatch"]
    ) -> "ColumnarCDRBatch":
        """Stack shards row-wise, merging their vocabularies.

        Shard vocabularies generally differ (each worker only saw its own
        cars), so codes are remapped into the union vocabulary.
        """
        if not shards:
            return cls.from_records([])
        if len(shards) == 1:
            return shards[0]
        car_ids = sorted(set().union(*(s.car_ids for s in shards)))
        carriers = sorted(set().union(*(s.carriers for s in shards)))
        technologies = sorted(set().union(*(s.technologies for s in shards)))
        return cls(
            np.concatenate([s.start for s in shards]),
            np.concatenate([s.duration for s in shards]),
            np.concatenate([s.cell_id for s in shards]),
            np.concatenate(
                [_remap(s.car_code, s.car_ids, car_ids) for s in shards]
            ),
            np.concatenate(
                [_remap(s.carrier_code, s.carriers, carriers) for s in shards]
            ),
            np.concatenate(
                [
                    _remap(s.tech_code, s.technologies, technologies)
                    for s in shards
                ]
            ),
            car_ids,
            carriers,
            technologies,
        )

    # -- conversion ----------------------------------------------------

    def to_records(self) -> list[ConnectionRecord]:
        """Materialize the rows as record objects, in row order."""
        cars = self.car_ids
        carriers = self.carriers
        technologies = self.technologies
        return [
            ConnectionRecord(
                start=s,
                car_id=cars[car],
                cell_id=cell,
                carrier=carriers[carrier],
                technology=technologies[tech],
                duration=d,
            )
            for s, d, cell, car, carrier, tech in zip(
                self.start.tolist(),
                self.duration.tolist(),
                self.cell_id.tolist(),
                self.car_code.tolist(),
                self.carrier_code.tolist(),
                self.tech_code.tolist(),
            )
        ]

    def to_batch(self) -> CDRBatch:
        """Convert to a :class:`CDRBatch`, sorting only when necessary.

        The resulting batch carries this columnar view (re-ordered the same
        way) so grouping helpers stay vectorized.
        """
        order = self.sort_order()
        if np.array_equal(order, np.arange(len(order))):
            col = self
        else:
            col = self.take(order)
        batch = CDRBatch(col.to_records(), assume_sorted=True)
        batch._columnar = col
        return batch

    # -- vectorized operations -----------------------------------------

    def __len__(self) -> int:
        return len(self.start)

    def take(self, indices: npt.NDArray[np.intp]) -> "ColumnarCDRBatch":
        """Row subset/permutation by index array; vocabularies are shared."""
        return ColumnarCDRBatch(
            self.start[indices],
            self.duration[indices],
            self.cell_id[indices],
            self.car_code[indices],
            self.carrier_code[indices],
            self.tech_code[indices],
            self.car_ids,
            self.carriers,
            self.technologies,
        )

    def rows(self, lo: int, hi: int) -> "ColumnarCDRBatch":
        """Contiguous row slice ``[lo, hi)`` as array *views* — zero copy.

        Unlike :meth:`take` (fancy indexing, which copies), a contiguous
        slice shares the parent's buffers, so chunking a memory-mapped
        batch into pieces never reads the file.  Vocabularies are shared.
        """
        return ColumnarCDRBatch(
            self.start[lo:hi],
            self.duration[lo:hi],
            self.cell_id[lo:hi],
            self.car_code[lo:hi],
            self.carrier_code[lo:hi],
            self.tech_code[lo:hi],
            self.car_ids,
            self.carriers,
            self.technologies,
        )

    def truncated(self, max_duration: float) -> "ColumnarCDRBatch":
        """Copy with durations capped at ``max_duration`` (Section 3's 600 s)."""
        return ColumnarCDRBatch(
            self.start,
            np.minimum(self.duration, max_duration),
            self.cell_id,
            self.car_code,
            self.carrier_code,
            self.tech_code,
            self.car_ids,
            self.carriers,
            self.technologies,
        )

    def sort_order(self) -> npt.NDArray[np.intp]:
        """Stable permutation applying the record ordering.

        Matches ``sorted(records)`` exactly: codes compare like their
        strings because the vocabularies are sorted.
        """
        order: npt.NDArray[np.intp] = np.lexsort(
            (
                self.duration,
                self.tech_code,
                self.carrier_code,
                self.cell_id,
                self.car_code,
                self.start,
            )
        )
        return order

    def sorted(self) -> "ColumnarCDRBatch":
        """Copy in record order (start, car, cell, carrier, tech, duration)."""
        return self.take(self.sort_order())

    def group_rows_by_car(self) -> dict[str, npt.NDArray[np.intp]]:
        """Row indices per car id, preserving row order inside each group.

        One stable argsort over the car codes replaces per-record dict
        appends; when rows are time-sorted, each group is chronological.
        """
        if len(self) == 0:
            return {}
        order = np.argsort(self.car_code, kind="stable")
        codes = self.car_code[order]
        boundaries = np.flatnonzero(np.diff(codes)) + 1
        groups = np.split(order, boundaries)
        return {self.car_ids[int(self.car_code[g[0]])]: g for g in groups}

    def group_rows_by_cell(self) -> dict[int, npt.NDArray[np.intp]]:
        """Row indices per cell id, preserving row order inside each group.

        The cell-side analogue of :meth:`group_rows_by_car`: one stable
        argsort over the cell ids, so each group stays chronological when
        the rows are time-sorted.
        """
        if len(self) == 0:
            return {}
        order = np.argsort(self.cell_id, kind="stable")
        ids = self.cell_id[order]
        boundaries = np.flatnonzero(np.diff(ids)) + 1
        groups = np.split(order, boundaries)
        return {int(self.cell_id[g[0]]): g for g in groups}

    def car_spans(self) -> tuple[npt.NDArray[np.intp], npt.NDArray[np.intp]]:
        """Car-major row permutation plus group-start offsets.

        Returns ``(order, starts)``: ``order`` is the stable permutation
        grouping rows by car code (row order — chronology for a time-sorted
        batch — preserved inside each group), and ``starts[k]`` is the
        offset in ``order`` where the k-th distinct car's run begins.  The
        k-th car's code is ``car_code[order[starts[k]]]``.  This is the
        flat-array form of :meth:`group_rows_by_car` that the vectorized
        analyses consume: no per-car dict, just contiguous segments.
        """
        if len(self) == 0:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        order = np.argsort(self.car_code, kind="stable").astype(np.intp)
        codes = self.car_code[order]
        starts: npt.NDArray[np.intp] = np.concatenate(
            (
                np.zeros(1, dtype=np.intp),
                (np.flatnonzero(np.diff(codes)) + 1).astype(np.intp),
            )
        )
        return order, starts

    def present_car_codes(self) -> npt.NDArray[np.int32]:
        """Sorted car codes that actually occur in the rows.

        After :meth:`take` subsets, the shared vocabulary may list cars
        with no remaining rows; analyses that report per-car results index
        only the present ones.
        """
        out: npt.NDArray[np.int32] = np.unique(self.car_code)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarCDRBatch):
            return NotImplemented
        return (
            self.car_ids == other.car_ids
            and self.carriers == other.carriers
            and self.technologies == other.technologies
            and np.array_equal(self.start, other.start)
            and np.array_equal(self.duration, other.duration)
            and np.array_equal(self.cell_id, other.cell_id)
            and np.array_equal(self.car_code, other.car_code)
            and np.array_equal(self.carrier_code, other.carrier_code)
            and np.array_equal(self.tech_code, other.tech_code)
        )

    __hash__ = None  # type: ignore[assignment]  # mutable arrays; not hashable

    @property
    def nbytes(self) -> int:
        """Total array storage in bytes (excluding vocabularies)."""
        total: int = sum(
            getattr(self, name).nbytes
            for name in (
                "start",
                "duration",
                "cell_id",
                "car_code",
                "carrier_code",
                "tech_code",
            )
        )
        return total


def _encode(values: list[str]) -> tuple[list[str], npt.NDArray[Any]]:
    """Sorted vocabulary plus per-row codes for a string column."""
    if not values:
        return [], np.empty(0, dtype=np.int64)
    vocab, codes = np.unique(np.asarray(values, dtype=object), return_inverse=True)
    return [str(v) for v in vocab], codes


def _remap(
    codes: npt.NDArray[Any], vocab: Sequence[str], union: Sequence[str]
) -> npt.NDArray[Any]:
    """Re-express ``codes`` over ``vocab`` as codes over ``union``."""
    if not len(vocab) or tuple(vocab) == tuple(union):
        return codes
    mapping: npt.NDArray[np.intp] = np.searchsorted(
        np.asarray(union, dtype=object), np.asarray(vocab, dtype=object)
    )
    return mapping[codes]
