"""Trace validation against the study calendar and cell inventory.

A CDR feed is only analyzable when it is *consistent*: every record starts
inside the study window, references a cell the inventory knows, and carries
the carrier/technology that cell actually has.  Real feeds violate all of
these (decommissioned cells, inventory lag, clock skew); the validator
enumerates violations so the analyst can decide what to drop before the
pipeline runs — the step between raw data and Section 3's methodology.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

from repro.algorithms.timebins import StudyClock
from repro.cdr.records import CDRBatch, ConnectionRecord
from repro.network.cells import Cell


class FindingKind(enum.Enum):
    """Classes of trace inconsistency."""

    OUT_OF_WINDOW = "record starts outside the study window"
    UNKNOWN_CELL = "record references a cell missing from the inventory"
    CARRIER_MISMATCH = "record carrier differs from the cell's carrier"
    TECHNOLOGY_MISMATCH = "record technology differs from the cell's"
    DUPLICATE_RECORD = "identical record appears more than once"


@dataclass(frozen=True)
class ValidationFinding:
    """One violation, with a representative record."""

    kind: FindingKind
    record: ConnectionRecord
    detail: str = ""


@dataclass
class ValidationReport:
    """All findings plus counts per kind."""

    n_records: int
    findings: list[ValidationFinding] = field(default_factory=list)

    @property
    def counts(self) -> Counter[FindingKind]:
        """Number of findings per kind."""
        return Counter(f.kind for f in self.findings)

    @property
    def ok(self) -> bool:
        """True when the trace is fully consistent."""
        return not self.findings

    def render(self) -> str:
        """Human-readable summary."""
        if self.ok:
            return f"{self.n_records:,} records validated: consistent"
        lines = [f"{self.n_records:,} records validated: {len(self.findings)} findings"]
        for kind, count in self.counts.most_common():
            lines.append(f"  {count:>6} x {kind.value}")
        return "\n".join(lines)


class TraceValidator:
    """Validates batches against a clock and (optionally) a cell inventory.

    Parameters
    ----------
    clock:
        Study calendar; records must start in ``[0, duration)``.
    cells:
        Cell inventory (``topology.cells``); omit to skip inventory checks.
    max_findings:
        Stop collecting after this many findings (the counts stay exact for
        the kinds found so far); keeps validation of a corrupt billion-row
        feed from materializing a billion findings.
    """

    def __init__(
        self,
        clock: StudyClock,
        cells: dict[int, Cell] | None = None,
        max_findings: int = 10_000,
    ) -> None:
        if max_findings <= 0:
            raise ValueError(f"max_findings must be positive, got {max_findings}")
        self.clock = clock
        self.cells = cells
        self.max_findings = max_findings

    def validate(self, batch: CDRBatch) -> ValidationReport:
        """Check every record; returns the full report."""
        report = ValidationReport(n_records=len(batch))
        seen: set[tuple[float, str, int, float]] = set()
        for rec in batch:
            if len(report.findings) >= self.max_findings:
                break
            key = (rec.start, rec.car_id, rec.cell_id, rec.duration)
            if key in seen:
                report.findings.append(
                    ValidationFinding(FindingKind.DUPLICATE_RECORD, rec)
                )
            seen.add(key)
            if not self.clock.in_study(rec.start):
                report.findings.append(
                    ValidationFinding(
                        FindingKind.OUT_OF_WINDOW,
                        rec,
                        detail=f"start={rec.start}, window=[0, {self.clock.duration})",
                    )
                )
            if self.cells is None:
                continue
            cell = self.cells.get(rec.cell_id)
            if cell is None:
                report.findings.append(
                    ValidationFinding(FindingKind.UNKNOWN_CELL, rec)
                )
                continue
            if rec.carrier != cell.carrier.name:
                report.findings.append(
                    ValidationFinding(
                        FindingKind.CARRIER_MISMATCH,
                        rec,
                        detail=f"record={rec.carrier}, inventory={cell.carrier.name}",
                    )
                )
            if rec.technology != cell.technology.value:
                report.findings.append(
                    ValidationFinding(
                        FindingKind.TECHNOLOGY_MISMATCH,
                        rec,
                        detail=f"record={rec.technology}, inventory={cell.technology.value}",
                    )
                )
        return report
