"""Connection records and batch containers.

A :class:`ConnectionRecord` is one radio-level connection: one car attached
to one cell on one carrier for some duration.  It mirrors the fields the
paper's CDRs expose (Section 3) — identities, cell, carrier, timing — and
deliberately carries no data volume, which the paper's data set lacks.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from operator import attrgetter
from typing import TYPE_CHECKING

from repro.algorithms.intervals import Interval
from repro.cdr.errors import CDRValidationError

if TYPE_CHECKING:
    from repro.cdr.columnar import ColumnarCDRBatch

#: Key function matching :class:`ConnectionRecord`'s field ordering; sorting
#: with an extracted key is ~2x faster than per-comparison tuple building.
_RECORD_SORT_KEY = attrgetter(
    "start", "car_id", "cell_id", "carrier", "technology", "duration"
)


class RecordConstructionCounter:
    """Mutable counter of :class:`ConnectionRecord` constructions."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


#: Active counter, or ``None`` when counting is off (the normal state).
_construction_counter: RecordConstructionCounter | None = None


@contextmanager
def count_record_constructions() -> Iterator[RecordConstructionCounter]:
    """Count every :class:`ConnectionRecord` built inside the ``with`` block.

    A test hook: the binary columnar load path (``repro.cdr.store``)
    guarantees it constructs *zero* record objects, and the guarantee is
    asserted rather than assumed::

        with count_record_constructions() as counter:
            batch = read_batch_cdrz(path)
        assert counter.count == 0

    Nesting restores the previous counter on exit; the hook costs one
    global ``None`` check per construction when inactive.
    """
    global _construction_counter
    counter = RecordConstructionCounter()
    previous = _construction_counter
    _construction_counter = counter
    try:
        yield counter
    finally:
        _construction_counter = previous


@dataclass(frozen=True, order=True, slots=True)
class ConnectionRecord:
    """One radio connection from a car to a cell.

    Ordering is by ``(start, car_id, cell_id)`` so sorting a record list
    yields a stable chronological trace.
    """

    start: float
    car_id: str
    cell_id: int
    carrier: str
    technology: str
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise CDRValidationError(
                f"record duration must be non-negative, got {self.duration}"
            )
        if not self.car_id:
            raise CDRValidationError("record car_id must be non-empty")
        if _construction_counter is not None:
            _construction_counter.count += 1

    @property
    def end(self) -> float:
        """Timestamp at which the connection released."""
        return self.start + self.duration

    @property
    def interval(self) -> Interval:
        """The record's time extent as a half-open interval."""
        return Interval(self.start, self.end)

    def truncated(self, max_duration: float) -> "ConnectionRecord":
        """Copy with duration capped at ``max_duration`` (Section 3's 600 s)."""
        if self.duration <= max_duration:
            return self
        return ConnectionRecord(
            start=self.start,
            car_id=self.car_id,
            cell_id=self.cell_id,
            carrier=self.carrier,
            technology=self.technology,
            duration=max_duration,
        )


class CDRBatch:
    """A chronologically sorted collection of connection records.

    The batch owns its list; iterate it or use the grouping helpers, which
    are what every analysis in :mod:`repro.core` consumes.

    ``assume_sorted=True`` skips the construction sort.  It is for callers
    that can prove order is preserved — preprocessing drops/truncates rows
    of an already-sorted batch without reordering them — and makes batch
    construction O(n).  Passing unsorted records with ``assume_sorted=True``
    is a contract violation; grouping helpers would silently misbehave.
    """

    def __init__(
        self,
        records: Iterable[ConnectionRecord],
        *,
        assume_sorted: bool = False,
    ) -> None:
        if assume_sorted:
            self._records: list[ConnectionRecord] = list(records)
        else:
            self._records = sorted(records, key=_RECORD_SORT_KEY)
        self._by_car: dict[str, list[ConnectionRecord]] | None = None
        self._by_cell: dict[int, list[ConnectionRecord]] | None = None
        self._columnar: ColumnarCDRBatch | None = None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ConnectionRecord]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> ConnectionRecord:
        return self._records[idx]

    @property
    def records(self) -> list[ConnectionRecord]:
        """The sorted record list (not a copy; treat as read-only)."""
        return self._records

    def columnar(self) -> ColumnarCDRBatch:
        """This batch's columnar view, built once and cached.

        Returns a :class:`repro.cdr.columnar.ColumnarCDRBatch` sharing the
        batch's row order; vectorized cleaning and grouping go through it.
        """
        if self._columnar is None:
            from repro.cdr.columnar import ColumnarCDRBatch

            self._columnar = ColumnarCDRBatch.from_records(self._records)
        return self._columnar

    def by_car(self) -> dict[str, list[ConnectionRecord]]:
        """Records grouped per car, each group chronological."""
        if self._by_car is None:
            if self._columnar is not None:
                # One stable argsort over the car codes replaces a python
                # dict append per record; chronological order within each
                # group survives because the batch rows are time-sorted.
                recs = self._records
                self._by_car = {
                    car: [recs[i] for i in idx]
                    for car, idx in self._columnar.group_rows_by_car().items()
                }
            else:
                groups: dict[str, list[ConnectionRecord]] = defaultdict(list)
                for rec in self._records:
                    groups[rec.car_id].append(rec)
                self._by_car = dict(groups)
        return self._by_car

    def by_cell(self) -> dict[int, list[ConnectionRecord]]:
        """Records grouped per cell, each group chronological."""
        if self._by_cell is None:
            if self._columnar is not None:
                # Same vectorized grouping as by_car(): one stable argsort
                # over the cell ids instead of a dict append per record.
                recs = self._records
                self._by_cell = {
                    cell: [recs[i] for i in idx]
                    for cell, idx in self._columnar.group_rows_by_cell().items()
                }
            else:
                groups: dict[int, list[ConnectionRecord]] = defaultdict(list)
                for rec in self._records:
                    groups[rec.cell_id].append(rec)
                self._by_cell = dict(groups)
        return self._by_cell

    def car_ids(self) -> list[str]:
        """Distinct car ids, sorted."""
        return sorted(self.by_car())

    def cell_ids(self) -> list[int]:
        """Distinct cell ids, sorted."""
        return sorted(self.by_cell())

    def filtered(self, predicate: Callable[[ConnectionRecord], bool]) -> "CDRBatch":
        """New batch keeping records for which ``predicate(record)`` is true."""
        # Filtering a sorted list preserves its order, so the copy need not
        # re-sort.
        return CDRBatch(
            [rec for rec in self._records if predicate(rec)], assume_sorted=True
        )

    def validate(self, study_duration: float | None = None) -> None:
        """Raise :class:`CDRValidationError` on ill-formed batches.

        Checks chronological consistency per construction and, when
        ``study_duration`` is given, that every record starts inside the
        study window.
        """
        if study_duration is not None:
            for rec in self._records:
                if not 0 <= rec.start < study_duration:
                    raise CDRValidationError(
                        f"record at t={rec.start} outside study of "
                        f"{study_duration} s"
                    )
