"""Keyed anonymization of car identifiers.

The paper's records are "anonymized and aggregated and do not contain
sensitive personal or identifiable information" (Section 3).  The synthetic
generator mimics that pipeline: raw fleet identifiers pass through a keyed
hash before they reach any analysis, so the mapping is stable within one key
and infeasible to reverse without it.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

from repro.cdr.records import ConnectionRecord


class Anonymizer:
    """Stable keyed pseudonymization of car ids.

    The same ``(key, car id)`` pair always yields the same pseudonym; two
    different keys give unlinkable pseudonym spaces, which is how a carrier
    would rotate anonymization epochs.
    """

    def __init__(self, key: bytes | str, digest_chars: int = 16) -> None:
        if isinstance(key, str):
            key = key.encode()
        if not key:
            raise ValueError("anonymization key must be non-empty")
        if not 8 <= digest_chars <= 32:
            raise ValueError(f"digest_chars must be in 8..32, got {digest_chars}")
        self._key = key
        self._digest_chars = digest_chars
        self._cache: dict[str, str] = {}

    def pseudonym(self, car_id: str) -> str:
        """Pseudonym for one car id."""
        cached = self._cache.get(car_id)
        if cached is not None:
            return cached
        digest = hashlib.blake2b(
            car_id.encode(), key=self._key, digest_size=16
        ).hexdigest()[: self._digest_chars]
        result = f"anon-{digest}"
        self._cache[car_id] = result
        return result

    def anonymize_record(self, record: ConnectionRecord) -> ConnectionRecord:
        """Copy of a record with the car id pseudonymized."""
        return ConnectionRecord(
            start=record.start,
            car_id=self.pseudonym(record.car_id),
            cell_id=record.cell_id,
            carrier=record.carrier,
            technology=record.technology,
            duration=record.duration,
        )

    def anonymize(
        self, records: Iterable[ConnectionRecord]
    ) -> list[ConnectionRecord]:
        """Anonymize a record collection, preserving order."""
        return [self.anonymize_record(rec) for rec in records]
