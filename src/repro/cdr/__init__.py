"""Call Detail Record (CDR) data model.

The paper's input is anonymized, aggregated radio-level CDRs: for each
connection, which car connected to which cell on which carrier, when and for
how long — but not how many bytes moved (Section 3).  This package defines
that record type, batch containers with validation, CSV/JSONL round-trip,
the binary columnar ``.cdrz`` store with zero-copy load, and keyed
anonymization of car identifiers.
"""

from repro.cdr.anonymize import Anonymizer
from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.errors import CDRValidationError, ReproError
from repro.cdr.io import (
    load_trace,
    read_columnar_auto,
    read_columnar_csv,
    read_columnar_jsonl,
    read_records_csv,
    read_records_daily,
    read_records_jsonl,
    trace_format,
    write_records_csv,
    write_records_daily,
    write_records_jsonl,
)
from repro.cdr.quality import QualityReport, assess_quality
from repro.cdr.records import (
    CDRBatch,
    ConnectionRecord,
    RecordConstructionCounter,
    count_record_constructions,
)
from repro.cdr.store import (
    CDRZ_SUFFIX,
    SCHEMA_VERSION,
    CdrzHeader,
    CdrzInfo,
    CdrzMemberInfo,
    inspect_cdrz,
    is_record_sorted,
    iter_cdrz_chunks,
    read_batch_cdrz,
    read_cdr_batch,
    read_cdrz,
    resolve_shards,
    write_batch_cdrz,
    write_sharded_cdrz,
)
from repro.cdr.validate import TraceValidator, ValidationReport

__all__ = [
    "Anonymizer",
    "CDRBatch",
    "CDRValidationError",
    "CDRZ_SUFFIX",
    "CdrzHeader",
    "CdrzInfo",
    "CdrzMemberInfo",
    "ColumnarCDRBatch",
    "ConnectionRecord",
    "QualityReport",
    "RecordConstructionCounter",
    "SCHEMA_VERSION",
    "TraceValidator",
    "ValidationReport",
    "assess_quality",
    "count_record_constructions",
    "inspect_cdrz",
    "is_record_sorted",
    "iter_cdrz_chunks",
    "load_trace",
    "read_batch_cdrz",
    "read_cdr_batch",
    "read_cdrz",
    "read_columnar_auto",
    "read_columnar_csv",
    "read_columnar_jsonl",
    "read_records_csv",
    "read_records_daily",
    "read_records_jsonl",
    "resolve_shards",
    "ReproError",
    "trace_format",
    "write_batch_cdrz",
    "write_records_csv",
    "write_records_daily",
    "write_records_jsonl",
    "write_sharded_cdrz",
]
