"""Call Detail Record (CDR) data model.

The paper's input is anonymized, aggregated radio-level CDRs: for each
connection, which car connected to which cell on which carrier, when and for
how long — but not how many bytes moved (Section 3).  This package defines
that record type, batch containers with validation, CSV/JSONL round-trip and
keyed anonymization of car identifiers.
"""

from repro.cdr.anonymize import Anonymizer
from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.errors import CDRValidationError, ReproError
from repro.cdr.io import (
    read_records_csv,
    read_records_daily,
    read_records_jsonl,
    write_records_csv,
    write_records_daily,
    write_records_jsonl,
)
from repro.cdr.quality import QualityReport, assess_quality
from repro.cdr.records import CDRBatch, ConnectionRecord
from repro.cdr.validate import TraceValidator, ValidationReport

__all__ = [
    "Anonymizer",
    "CDRBatch",
    "CDRValidationError",
    "ColumnarCDRBatch",
    "ConnectionRecord",
    "QualityReport",
    "TraceValidator",
    "ValidationReport",
    "assess_quality",
    "ReproError",
    "read_records_csv",
    "read_records_daily",
    "read_records_jsonl",
    "write_records_csv",
    "write_records_daily",
    "write_records_jsonl",
]
