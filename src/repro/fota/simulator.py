"""FOTA campaign simulation over a recorded trace.

The simulator replays each car's (cleaned, truncated) connection records
within the campaign window.  Each record is a delivery opportunity: the
policy decides whether to use it, and the transferred volume is the record's
busy/non-busy seconds times the corresponding rate.  This is exactly the view
an OEM's campaign server has — it sees connections as they happen and decides
whether to serve bytes — so policies are comparable on equal footing.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.timebins import BIN_SECONDS
from repro.cdr.records import CDRBatch, ConnectionRecord
from repro.core.busy import BusySchedule
from repro.fota.campaign import CampaignConfig, CampaignResult, CarOutcome, TransferEvent
from repro.fota.policy import DeliveryPolicy


class CampaignSimulator:
    """Replays a trace against a delivery policy.

    Parameters
    ----------
    batch:
        Cleaned, truncated records (``PreprocessResult.truncated``).
    schedule:
        Per-cell busy masks used both for the policy's busy signal and for
        accounting bytes delivered through busy cells.
    days_on_network:
        Per-car distinct-day counts (for rare/common wave policies).
    seed:
        Seed for the policy's randomized scheduling decisions.
    """

    def __init__(
        self,
        batch: CDRBatch,
        schedule: BusySchedule,
        days_on_network: dict[str, int],
        seed: int = 0,
    ) -> None:
        self.batch = batch
        self.schedule = schedule
        self.days_on_network = days_on_network
        self.seed = seed

    def run(self, policy: DeliveryPolicy, config: CampaignConfig) -> CampaignResult:
        """Simulate one campaign under one policy."""
        rng = np.random.default_rng(self.seed)
        car_ids = self.batch.car_ids()
        policy.prepare(
            car_ids,
            self.days_on_network,
            config.window_start,
            config.window_end,
            rng,
        )
        result = CampaignResult(config=config, policy_name=policy.name)
        for car_id in car_ids:
            result.outcomes[car_id] = self._deliver_to_car(car_id, policy, config)
        return result

    def run_throttled(
        self,
        policy: DeliveryPolicy,
        config: CampaignConfig,
        max_concurrent_per_cell: int,
    ) -> CampaignResult:
        """Simulate a campaign with a per-cell concurrent-download cap.

        The paper's Section 4.4 worry is "20 or more cars attempt
        overlapping downloads" in one cell; a real campaign server throttles
        exactly this.  Records are replayed chronologically across the whole
        fleet; an opportunity is refused (and counted in
        ``opportunities_throttled``) when any 15-minute bin the record
        touches already carries ``max_concurrent_per_cell`` campaign
        downloads in that cell.
        """
        if max_concurrent_per_cell < 1:
            raise ValueError(
                f"max_concurrent_per_cell must be >= 1, got {max_concurrent_per_cell}"
            )
        rng = np.random.default_rng(self.seed)
        car_ids = self.batch.car_ids()
        policy.prepare(
            car_ids, self.days_on_network, config.window_start, config.window_end, rng
        )
        result = CampaignResult(config=config, policy_name=f"{policy.name}-throttled")
        for car_id in car_ids:
            result.outcomes[car_id] = CarOutcome(car_id=car_id)
        remaining = {car_id: config.update_bytes for car_id in car_ids}
        occupancy: dict[tuple[int, int], int] = {}

        for rec in self.batch:
            outcome = result.outcomes[rec.car_id]
            if remaining[rec.car_id] <= 0:
                continue
            if rec.end <= config.window_start or rec.start >= config.window_end:
                continue
            busy_s, quiet_s = self._split_busy_seconds(rec, config)
            if not policy.should_transfer(rec.car_id, rec, busy_s > quiet_s):
                outcome.opportunities_skipped += 1
                continue
            start = max(rec.start, config.window_start)
            end = min(rec.end, config.window_end)
            bins = range(
                int(start // BIN_SECONDS), int((end - 1e-9) // BIN_SECONDS) + 1
            )
            if any(
                occupancy.get((rec.cell_id, b), 0) >= max_concurrent_per_cell
                for b in bins
            ):
                outcome.opportunities_throttled += 1
                continue
            for b in bins:
                occupancy[(rec.cell_id, b)] = occupancy.get((rec.cell_id, b), 0) + 1
            remaining[rec.car_id] = self._transfer(
                rec, outcome, remaining[rec.car_id], busy_s, quiet_s, config
            )
        return result

    def _deliver_to_car(
        self, car_id: str, policy: DeliveryPolicy, config: CampaignConfig
    ) -> CarOutcome:
        outcome = CarOutcome(car_id=car_id)
        remaining = config.update_bytes
        for rec in self.batch.by_car()[car_id]:
            if remaining <= 0:
                break
            if rec.end <= config.window_start or rec.start >= config.window_end:
                continue
            busy_s, quiet_s = self._split_busy_seconds(rec, config)
            mostly_busy = busy_s > quiet_s
            if not policy.should_transfer(car_id, rec, mostly_busy):
                outcome.opportunities_skipped += 1
                continue
            remaining = self._transfer(rec, outcome, remaining, busy_s, quiet_s, config)
        return outcome

    def _transfer(
        self,
        rec: ConnectionRecord,
        outcome: CarOutcome,
        remaining: float,
        busy_s: float,
        quiet_s: float,
        config: CampaignConfig,
    ) -> float:
        """Move bytes over one opportunity; returns the new remaining count.

        Bytes move at the busy rate during busy seconds and the full rate
        otherwise, until the update is done.
        """
        outcome.opportunities_used += 1
        moved_total = 0.0
        for seconds, rate, is_busy in (
            (quiet_s, config.rate_bps, False),
            (busy_s, config.rate_bps * config.busy_rate_factor, True),
        ):
            if remaining <= 0 or seconds <= 0:
                continue
            can_move = rate * seconds / 8.0
            moved = min(can_move, remaining)
            remaining -= moved
            moved_total += moved
            outcome.transferred_bytes += moved
            if is_busy:
                outcome.busy_bytes += moved
        if moved_total > 0:
            outcome.transfers.append(
                TransferEvent(
                    cell_id=rec.cell_id,
                    start=max(rec.start, config.window_start),
                    end=min(rec.end, config.window_end),
                    transferred_bytes=moved_total,
                )
            )
        if remaining <= 0:
            outcome.completion_time = min(rec.end, config.window_end)
        return remaining

    def _split_busy_seconds(
        self, rec: ConnectionRecord, config: CampaignConfig
    ) -> tuple[float, float]:
        """Seconds of the record (clipped to the window) that are busy/quiet."""
        start = max(rec.start, config.window_start)
        end = min(rec.end, config.window_end)
        if end <= start:
            return 0.0, 0.0
        mask = self.schedule.busy_mask(rec.cell_id)
        busy = 0.0
        total = end - start
        if mask is not None:
            first = int(start // BIN_SECONDS)
            last = int((end - 1e-9) // BIN_SECONDS)
            for b in range(first, last + 1):
                lo = max(start, b * BIN_SECONDS)
                hi = min(end, (b + 1) * BIN_SECONDS)
                if 0 <= b < mask.size and mask[b]:
                    busy += max(0.0, hi - lo)
        return busy, total - busy
