"""Managed FOTA (firmware-over-the-air) campaign planning.

Section 4.3 of the paper sketches how its car segmentation should drive FOTA
management: "rare cars would be prioritized over the limited FOTA campaign
window, and common cars would be perhaps randomized or scheduled depending on
the typical time they connect", and pushing a large download into an already
loaded cell is "pouring oil onto the fire".  This package turns that sketch
into code: delivery policies, a campaign simulator that replays a trace, and
impact metrics (completion rate, time-to-complete, bytes delivered through
busy cells).
"""

from repro.fota.campaign import CampaignConfig, CampaignResult, CarOutcome
from repro.fota.impact import ImpactReport, assess_impact
from repro.fota.planner import CampaignPlanner, DeliveryPlan, PlannedPolicy
from repro.fota.policy import (
    BusyAwarePolicy,
    DeliveryPolicy,
    NaivePolicy,
    OffPeakPolicy,
    RareFirstPolicy,
)
from repro.fota.simulator import CampaignSimulator

__all__ = [
    "BusyAwarePolicy",
    "CampaignConfig",
    "CampaignPlanner",
    "CampaignResult",
    "CampaignSimulator",
    "DeliveryPlan",
    "ImpactReport",
    "PlannedPolicy",
    "assess_impact",
    "CarOutcome",
    "DeliveryPolicy",
    "NaivePolicy",
    "OffPeakPolicy",
    "RareFirstPolicy",
]
