"""Campaign configuration and results."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

#: Modest sustained download rate for an update sharing a live cell; the
#: paper's updates range "from Megabytes to even Gigabytes".
DEFAULT_RATE_BPS = 4_000_000.0


@dataclass(frozen=True)
class CampaignConfig:
    """One firmware rollout.

    The campaign pushes ``update_bytes`` to every car, using the car's radio
    connections between ``start_day`` and ``start_day + window_days``.
    Throughput is ``rate_bps`` on quiet cells and ``rate_bps *
    busy_rate_factor`` on busy ones — large downloads in loaded cells are
    both slower and the impact the operator wants to avoid.
    """

    update_bytes: float = 200e6
    start_day: int = 0
    window_days: int = 28
    rate_bps: float = DEFAULT_RATE_BPS
    busy_rate_factor: float = 0.35

    def __post_init__(self) -> None:
        if self.update_bytes <= 0:
            raise ValueError(f"update_bytes must be positive, got {self.update_bytes}")
        if self.window_days <= 0:
            raise ValueError(f"window_days must be positive, got {self.window_days}")
        if self.rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {self.rate_bps}")
        if not 0 < self.busy_rate_factor <= 1:
            raise ValueError(
                f"busy_rate_factor must be in (0, 1], got {self.busy_rate_factor}"
            )

    @property
    def window_start(self) -> float:
        """Campaign opening timestamp in study seconds."""
        return self.start_day * 86_400.0

    @property
    def window_end(self) -> float:
        """Campaign closing timestamp in study seconds."""
        return (self.start_day + self.window_days) * 86_400.0


@dataclass(frozen=True)
class TransferEvent:
    """Bytes moved to one car over one connection opportunity."""

    cell_id: int
    start: float
    end: float
    transferred_bytes: float


@dataclass
class CarOutcome:
    """Delivery outcome for one car."""

    car_id: str
    transferred_bytes: float = 0.0
    busy_bytes: float = 0.0
    completion_time: float | None = None
    opportunities_used: int = 0
    opportunities_skipped: int = 0
    #: Opportunities the campaign server refused because the serving cell
    #: already carried the maximum concurrent downloads (throttled runs).
    opportunities_throttled: int = 0
    #: Every opportunity that actually moved bytes, for impact accounting.
    transfers: list[TransferEvent] = field(default_factory=list, repr=False)

    @property
    def complete(self) -> bool:
        """Whether the full update arrived within the window."""
        return self.completion_time is not None


@dataclass
class CampaignResult:
    """Fleet-level outcome of one simulated campaign."""

    config: CampaignConfig
    policy_name: str
    outcomes: dict[str, CarOutcome] = field(default_factory=dict)

    @property
    def n_cars(self) -> int:
        """Cars targeted by the campaign."""
        return len(self.outcomes)

    @property
    def completion_rate(self) -> float:
        """Fraction of targeted cars fully updated within the window."""
        if not self.outcomes:
            return 0.0
        return sum(o.complete for o in self.outcomes.values()) / len(self.outcomes)

    @property
    def busy_byte_fraction(self) -> float:
        """Share of all delivered bytes that crossed busy cells — the
        network-impact metric the paper's policies try to minimize."""
        total = sum(o.transferred_bytes for o in self.outcomes.values())
        if total == 0:
            return 0.0
        return sum(o.busy_bytes for o in self.outcomes.values()) / total

    def completion_days(self) -> npt.NDArray[np.float64]:
        """Days from campaign start to completion, completed cars only."""
        times = [
            o.completion_time - self.config.window_start
            for o in self.outcomes.values()
            if o.completion_time is not None
        ]
        return np.asarray(times, dtype=np.float64) / 86_400.0

    def time_to_fraction(self, fraction: float) -> float | None:
        """Days until ``fraction`` of all targeted cars completed, or None."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        days = np.sort(self.completion_days())
        needed = int(np.ceil(fraction * self.n_cars))
        if days.size < needed:
            return None
        return float(days[needed - 1])
