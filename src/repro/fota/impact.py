"""Network impact of a FOTA campaign.

The paper's worry is concrete: "any number of large downloads added to the
loaded cell may deteriorate experience for everyone, same as having 20 or
more cars attempt overlapping downloads" (Section 4.4).  This module
quantifies both failure modes for a simulated campaign:

* **added utilization** — campaign bytes through each cell per 15-minute
  bin, converted to PRB utilization via the carrier's capacity, and the
  cells the campaign pushes over the busy bar;
* **download concurrency** — how many cars were receiving the update in the
  same cell and bin, the overlapping-download count.

The accounting replays the transfer events the simulator recorded, so it is
exact for any policy it ran, including throttled campaigns.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.algorithms.timebins import BIN_SECONDS
from repro.fota.campaign import CampaignConfig, CampaignResult
from repro.network.cells import Cell
from repro.network.load import CellLoadModel
from repro.network.scheduler import DEFAULT_BPS_PER_PRB


@dataclass(frozen=True)
class ImpactReport:
    """Cell-level impact of one campaign."""

    #: Added PRB utilization per (cell, bin) from campaign traffic.
    added_utilization: dict[tuple[int, int], float]
    #: Concurrent campaign downloads per (cell, bin).
    download_concurrency: Counter
    #: (cell, bin) pairs the campaign pushed from below to above the bar.
    newly_busy_bins: list[tuple[int, int]]

    @property
    def peak_added_utilization(self) -> float:
        """Largest campaign-added utilization in any (cell, bin)."""
        if not self.added_utilization:
            return 0.0
        return max(self.added_utilization.values())

    @property
    def peak_concurrency(self) -> int:
        """Most concurrent campaign downloads in one cell and bin."""
        if not self.download_concurrency:
            return 0
        return max(self.download_concurrency.values())

    def bins_with_concurrency_at_least(self, n: int) -> int:
        """(cell, bin) pairs with at least ``n`` overlapping downloads."""
        return sum(1 for c in self.download_concurrency.values() if c >= n)


def assess_impact(
    result: CampaignResult,
    cells: dict[int, Cell],
    load_model: CellLoadModel,
    config: CampaignConfig | None = None,
    busy_threshold: float = 0.80,
    bps_per_prb: float = DEFAULT_BPS_PER_PRB,
) -> ImpactReport:
    """Estimate the network impact of a simulated campaign.

    Uses the transfer events the simulator recorded per car, so the
    accounting is exact for any policy (including throttled runs): each
    event's bytes spread over the 15-minute bins its connection touched.
    """
    cfg = config or result.config
    added_bytes: Counter = Counter()
    concurrency: Counter = Counter()
    for outcome in result.outcomes.values():
        for event in outcome.transfers:
            span = event.end - event.start
            if span <= 0:
                continue
            first = int(event.start // BIN_SECONDS)
            last = int((event.end - 1e-9) // BIN_SECONDS)
            for b in range(first, last + 1):
                lo = max(event.start, b * BIN_SECONDS)
                hi = min(event.end, (b + 1) * BIN_SECONDS)
                fraction = (hi - lo) / span
                if fraction <= 0:
                    continue
                added_bytes[(event.cell_id, b)] += event.transferred_bytes * fraction
                concurrency[(event.cell_id, b)] += 1

    added_utilization: dict[tuple[int, int], float] = {}
    newly_busy: list[tuple[int, int]] = []
    for (cell_id, b), byte_count in added_bytes.items():
        cell = cells.get(cell_id)
        if cell is None:
            continue
        capacity_bytes = cell.carrier.prb_capacity * bps_per_prb * BIN_SECONDS / 8.0
        added = min(byte_count / capacity_bytes, 1.0)
        added_utilization[(cell_id, b)] = added
        base = _base_utilization(load_model, cell_id, b)
        if base <= busy_threshold < min(base + added, 1.0):
            newly_busy.append((cell_id, b))
    return ImpactReport(
        added_utilization=added_utilization,
        download_concurrency=concurrency,
        newly_busy_bins=sorted(newly_busy),
    )


def _base_utilization(load_model: CellLoadModel, cell_id: int, global_bin: int) -> float:
    if cell_id not in load_model.topology.cells:
        return 0.0
    t = global_bin * BIN_SECONDS
    if not load_model.clock.in_study(t):
        return 0.0
    return load_model.utilization(cell_id, t)
