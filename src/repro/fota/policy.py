"""FOTA delivery policies.

A policy answers one question per connection opportunity: should the update
flow over *this* connection?  The simulator supplies the opportunity (car,
record, whether the serving cell is busy right now) and the policy's own
per-campaign state (assigned start days for wave scheduling).

Policies implemented, from the paper's Section 4.3 discussion:

* :class:`NaivePolicy` — push on every opportunity from day one.  The
  baseline an operator gets without management.
* :class:`OffPeakPolicy` — never transfer through a currently-busy cell
  ("allowing a large FOTA download in an already loaded cell ... might be
  considered pouring oil onto the fire").
* :class:`RareFirstPolicy` — rare cars are eligible immediately; common cars
  are randomized across the remaining window.  Rare cars get priority
  because each missed appearance may be their last in the window.
* :class:`BusyAwarePolicy` — rare-first wave scheduling *and* off-peak
  transfer, the full managed scenario.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.cdr.records import ConnectionRecord


class DeliveryPolicy(ABC):
    """Decides, per connection opportunity, whether to transfer."""

    name: str = "abstract"

    def prepare(
        self,
        car_ids: list[str],
        days_on_network: dict[str, int],
        window_start: float,
        window_end: float,
        rng: np.random.Generator,
    ) -> None:
        """Called once before the campaign with fleet-wide context.

        The default keeps no state; wave-scheduling policies assign each car
        an eligibility time here.
        """

    @abstractmethod
    def should_transfer(
        self, car_id: str, record: ConnectionRecord, cell_busy: bool
    ) -> bool:
        """Whether to push bytes over this connection."""


class NaivePolicy(DeliveryPolicy):
    """Transfer on every opportunity, congestion be damned."""

    name = "naive"

    def should_transfer(
        self, car_id: str, record: ConnectionRecord, cell_busy: bool
    ) -> bool:
        return True


class OffPeakPolicy(DeliveryPolicy):
    """Transfer only when the serving cell is not busy right now."""

    name = "off-peak"

    def should_transfer(
        self, car_id: str, record: ConnectionRecord, cell_busy: bool
    ) -> bool:
        return not cell_busy


class RareFirstPolicy(DeliveryPolicy):
    """Rare cars immediately; common cars randomized over the window.

    ``rare_threshold_days`` matches Table 2's rare definition.  Common cars
    draw a uniformly random eligibility day within the first
    ``spread_fraction`` of the window, spreading load without starving the
    tail of the campaign.
    """

    name = "rare-first"

    def __init__(
        self, rare_threshold_days: int = 10, spread_fraction: float = 0.6
    ) -> None:
        if not 0 < spread_fraction <= 1:
            raise ValueError(f"spread_fraction must be in (0, 1], got {spread_fraction}")
        self.rare_threshold_days = rare_threshold_days
        self.spread_fraction = spread_fraction
        self._eligible_from: dict[str, float] = {}

    def prepare(
        self,
        car_ids: list[str],
        days_on_network: dict[str, int],
        window_start: float,
        window_end: float,
        rng: np.random.Generator,
    ) -> None:
        span = (window_end - window_start) * self.spread_fraction
        for car in car_ids:
            if days_on_network.get(car, 0) <= self.rare_threshold_days:
                self._eligible_from[car] = window_start
            else:
                self._eligible_from[car] = window_start + float(rng.uniform(0, span))

    def should_transfer(
        self, car_id: str, record: ConnectionRecord, cell_busy: bool
    ) -> bool:
        return record.start >= self._eligible_from.get(car_id, record.start)


class BusyAwarePolicy(RareFirstPolicy):
    """Rare-first wave scheduling plus off-peak-only transfers."""

    name = "busy-aware"

    def should_transfer(
        self, car_id: str, record: ConnectionRecord, cell_busy: bool
    ) -> bool:
        if cell_busy:
            return False
        return super().should_transfer(car_id, record, cell_busy)
