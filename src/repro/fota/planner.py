"""Prediction-driven FOTA campaign planning.

The paper's closing discussion (Section 4.7) connects its threads: cars are
*predictable*, so "per-car prediction models for efficient content delivery"
can schedule each car's download into hours where (a) the car is expected on
the network and (b) the network is expected quiet.  This module implements
that planner: it trains the hour-of-week presence predictor on the first
weeks of a trace, intersects each car's predicted hours with the network's
expected off-peak hours, and emits a per-car delivery window plan that the
campaign simulator can execute via :class:`PlannedPolicy`.

Cars with no usable prediction (rare cars, new cars) fall back to
all-hours eligibility — mirroring the paper's "rare cars would be
prioritized" guidance, since their appearances are too precious to skip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.timebins import StudyClock
from repro.cdr.records import CDRBatch, ConnectionRecord
from repro.fota.policy import DeliveryPolicy
from repro.network.load import CellLoadModel
from repro.prediction.model import HourOfWeekPredictor, presence_by_week

HOURS_PER_WEEK = 24 * 7


@dataclass(frozen=True)
class DeliveryPlan:
    """Per-car hour-of-week delivery windows.

    ``windows[car_id]`` is a boolean (168,) array; a car may receive bytes
    during hours where it is True.  ``predicted`` marks cars whose windows
    come from a model rather than the all-hours fallback.
    """

    windows: dict[str, npt.NDArray[np.bool_]]
    predicted: frozenset[str]

    def window_hours(self, car_id: str) -> int:
        """Number of eligible hours per week for a car (168 = unrestricted)."""
        window = self.windows.get(car_id)
        return HOURS_PER_WEEK if window is None else int(window.sum())

    def coverage(self) -> float:
        """Fraction of planned cars with model-derived (restricted) windows."""
        if not self.windows:
            return 0.0
        return len(self.predicted) / len(self.windows)


class CampaignPlanner:
    """Builds a :class:`DeliveryPlan` from trace history and network load.

    Parameters
    ----------
    clock:
        Study calendar.
    load_model:
        Source of the network's expected busy hours: an hour of the week is
        off-peak when the mean utilization template across hot cells stays
        at or below ``offpeak_utilization``.
    presence_threshold:
        Training-week fraction above which an hour counts as predicted
        presence (the :class:`HourOfWeekPredictor` threshold).
    offpeak_utilization:
        Utilization bar defining network off-peak hours.
    min_window_hours:
        Plans narrower than this fall back to the car's full predicted
        presence (and then to all hours), so no car is starved.
    """

    def __init__(
        self,
        clock: StudyClock,
        load_model: CellLoadModel,
        presence_threshold: float = 0.5,
        offpeak_utilization: float = 0.75,
        min_window_hours: int = 2,
    ) -> None:
        self.clock = clock
        self.load_model = load_model
        self.presence_threshold = presence_threshold
        self.offpeak_utilization = offpeak_utilization
        self.min_window_hours = min_window_hours

    def network_offpeak_hours(self) -> npt.NDArray[np.bool_]:
        """(168,) boolean mask of hours where the loaded cells sit off-peak."""
        hot = [
            cid
            for cid in sorted(self.load_model.topology.cells)
            if self.load_model.profile(cid).hot
        ]
        if not hot:
            hot = sorted(self.load_model.topology.cells)[:10]
        templates = np.stack([self.load_model.weekly_template(c) for c in hot])
        mean_bins = templates.mean(axis=0)  # 672 bins, Monday-first
        hourly = mean_bins.reshape(HOURS_PER_WEEK, 4).mean(axis=1)
        offpeak: npt.NDArray[np.bool_] = hourly <= self.offpeak_utilization
        return offpeak

    def plan(self, train_batch: CDRBatch, train_weeks: int) -> DeliveryPlan:
        """Build per-car windows from the first ``train_weeks`` of history."""
        if train_weeks < 1:
            raise ValueError(f"train_weeks must be >= 1, got {train_weeks}")
        offpeak = self.network_offpeak_hours()
        windows: dict[str, npt.NDArray[np.bool_]] = {}
        predicted: set[str] = set()
        for car_id, records in train_batch.by_car().items():
            weeks = presence_by_week(records, self.clock)
            train = [weeks[w] for w in sorted(weeks) if w < train_weeks]
            if not train:
                windows[car_id] = np.ones(HOURS_PER_WEEK, dtype=bool)
                continue
            predictor = HourOfWeekPredictor(self.presence_threshold).fit(train)
            presence = predictor.predict_week()
            window = presence & offpeak
            if window.sum() < self.min_window_hours:
                window = presence
            if window.sum() < self.min_window_hours:
                window = np.ones(HOURS_PER_WEEK, dtype=bool)
            else:
                predicted.add(car_id)
            windows[car_id] = window
        return DeliveryPlan(windows=windows, predicted=frozenset(predicted))


class PlannedPolicy(DeliveryPolicy):
    """Delivery policy executing a :class:`DeliveryPlan`.

    Transfers only during a car's planned hour-of-week windows; cars absent
    from the plan (sold mid-study, never seen in training) are always
    eligible, and a currently-busy serving cell still blocks transfer —
    the plan targets *expected* quiet hours, the live signal guards the
    residual.
    """

    name = "planned"

    def __init__(self, plan: DeliveryPlan, clock: StudyClock) -> None:
        self.plan = plan
        self.clock = clock

    def should_transfer(
        self, car_id: str, record: ConnectionRecord, cell_busy: bool
    ) -> bool:
        if cell_busy:
            return False
        window = self.plan.windows.get(car_id)
        if window is None:
            return True
        return bool(window[self.clock.hour_of_week(record.start)])
