"""Link capacity: from SINR to achievable throughput.

Ties the signal model to the resource model: a car's achievable download
rate is its spectral efficiency (truncated-Shannon from SINR) times the
bandwidth share the scheduler can give it — which on a busy cell is the
residual PRB fraction.  This is the quantitative backbone of the paper's
motivation figures: why one greedy download can eat a cell (Figure 1), and
why pushing a FOTA image through a cell at U_PRB > 80% both crawls and hurts.
"""

from __future__ import annotations

import math

from repro.network.cells import Cell

#: Spectral-efficiency ceiling of a practical LTE link (256-QAM-ish), b/s/Hz.
MAX_EFFICIENCY_BPS_PER_HZ = 6.0
#: Attenuation factor on pure Shannon capacity for implementation losses.
SHANNON_GAP = 0.75
#: SINR below which the link cannot sustain data at all.
MIN_SINR_DB = -10.0


def spectral_efficiency(sinr_db: float) -> float:
    """Truncated-Shannon spectral efficiency in bits/s/Hz.

    ``0.75 * log2(1 + SINR)`` clamped to ``[0, 6]`` with a hard floor below
    -10 dB — the standard system-level abstraction of an LTE link adapter.
    """
    if sinr_db < MIN_SINR_DB:
        return 0.0
    linear = 10 ** (sinr_db / 10.0)
    return min(SHANNON_GAP * math.log2(1.0 + linear), MAX_EFFICIENCY_BPS_PER_HZ)


def achievable_rate_bps(
    cell: Cell,
    sinr_db: float,
    prb_share: float = 1.0,
) -> float:
    """Downlink rate on ``cell`` at the given SINR and PRB share.

    ``prb_share`` is the fraction of the cell's PRBs the scheduler grants —
    the residual ``1 - U_PRB`` when other traffic is inelastic, or a fair
    share when the cell is contended.
    """
    if not 0 <= prb_share <= 1:
        raise ValueError(f"prb_share must be in [0, 1], got {prb_share}")
    bandwidth_hz = cell.carrier.bandwidth_mhz * 1e6
    return spectral_efficiency(sinr_db) * bandwidth_hz * prb_share


def download_time_s(size_bytes: float, rate_bps: float) -> float:
    """Seconds to move ``size_bytes`` at ``rate_bps``; infinite at zero rate."""
    if size_bytes < 0:
        raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
    if rate_bps <= 0:
        return math.inf
    return size_bytes * 8.0 / rate_bps


def fota_cell_budget_bytes(
    cell: Cell,
    sinr_db: float,
    dwell_s: float,
    utilization: float,
) -> float:
    """Bytes a FOTA download can move through one cell before handover.

    The short per-cell dwell (Figure 9's ~105 s median) times the residual
    capacity bounds what each cell can contribute to a large download — the
    paper's point that an update spans 3-10 base stations (Section 4.5).
    """
    if dwell_s < 0:
        raise ValueError(f"dwell_s must be non-negative, got {dwell_s}")
    if not 0 <= utilization <= 1:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    rate = achievable_rate_bps(cell, sinr_db, prb_share=1.0 - utilization)
    return rate * dwell_s / 8.0
