"""Planar geometry for the synthetic metro region.

The synthetic study area is a flat plane measured in kilometres; at metro
scale the curvature of the earth is irrelevant to every analysis in the paper,
so no geodesy is needed.  Base stations sit on a hexagonal grid (the classic
cellular layout), roads connect grid points, and cars move along roads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Point:
    """A location on the plane, in kilometres."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        """This point's position vector multiplied by ``factor``."""
        return Point(self.x * factor, self.y * factor)

    def norm(self) -> float:
        """Distance from the origin."""
        return math.hypot(self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in kilometres."""
    return math.hypot(a.x - b.x, a.y - b.y)


def bearing_deg(origin: Point, target: Point) -> float:
    """Compass-style bearing from ``origin`` to ``target`` in degrees.

    0 degrees points along +y ("north"), 90 along +x ("east"); the result is
    normalized to ``[0, 360)``.  Used to pick which ~120-degree sector of a
    base station serves a device.
    """
    angle = math.degrees(math.atan2(target.x - origin.x, target.y - origin.y))
    return angle % 360.0


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """Point ``fraction`` of the way from ``a`` to ``b`` (0 -> a, 1 -> b)."""
    return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)


def hex_grid(width: float, height: float, pitch: float) -> list[Point]:
    """Hexagonal lattice of points covering ``[0, width] x [0, height]``.

    ``pitch`` is the distance between horizontally adjacent points.  Rows are
    offset by half a pitch and separated by ``pitch * sqrt(3) / 2``, the
    standard cell-site layout.
    """
    if pitch <= 0:
        raise ValueError(f"pitch must be positive, got {pitch}")
    row_height = pitch * math.sqrt(3.0) / 2.0
    points: list[Point] = []
    row = 0
    y = 0.0
    while y <= height + 1e-9:
        offset = (pitch / 2.0) if row % 2 else 0.0
        x = offset
        while x <= width + 1e-9:
            points.append(Point(x, y))
            x += pitch
        row += 1
        y = row * row_height
    return points
