"""Radio network entities: carriers (frequency bands), cells, sectors and
base stations.

Terminology follows Section 3 of the paper: a *cell* (or "radio") is one
directional antenna on one carrier frequency; cells covering the same
direction form a *sector*; a *base station* hosts several sectors, typically
three covering ~120 degrees each; and a *carrier* is a radio frequency band.
The paper observes five carriers named C1..C5, with the cars' modems
predominantly capable of C1-C4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.network.geometry import Point


class RadioTechnology(enum.Enum):
    """Radio access technology of a cell; the paper's cars use 3G and 4G."""

    UMTS = "3G"
    LTE = "4G"


@dataclass(frozen=True)
class Carrier:
    """A radio frequency carrier (band) offered by the network.

    ``prb_capacity`` is the number of LTE Physical Resource Blocks schedulable
    per subframe at the carrier's bandwidth (e.g. 50 for 10 MHz, 100 for
    20 MHz); for the 3G carrier it is an equivalent-capacity stand-in so the
    load model can treat all cells uniformly.
    """

    name: str
    frequency_mhz: int
    bandwidth_mhz: int
    prb_capacity: int
    technology: RadioTechnology

    def __post_init__(self) -> None:
        if self.prb_capacity <= 0:
            raise ValueError(f"prb_capacity must be positive, got {self.prb_capacity}")


#: The five carriers observed in the study, C1..C5 (Section 4.6).  Frequencies
#: are representative of a US operator: low-band 3G, low-band LTE, two
#: mid-band LTE carriers and a newer high-band carrier that the studied cars'
#: modems almost never support.
CARRIERS: dict[str, Carrier] = {
    "C1": Carrier("C1", 850, 5, 25, RadioTechnology.UMTS),
    "C2": Carrier("C2", 700, 10, 50, RadioTechnology.LTE),
    "C3": Carrier("C3", 1900, 20, 100, RadioTechnology.LTE),
    "C4": Carrier("C4", 2100, 10, 50, RadioTechnology.LTE),
    "C5": Carrier("C5", 2300, 20, 100, RadioTechnology.LTE),
}


@dataclass(frozen=True)
class Cell:
    """One directional antenna on one carrier — the unit cars connect to."""

    cell_id: int
    base_station_id: int
    sector_index: int
    carrier: Carrier
    location: Point
    azimuth_deg: float

    @property
    def technology(self) -> RadioTechnology:
        """Radio access technology inherited from the carrier."""
        return self.carrier.technology

    @property
    def sector_key(self) -> tuple[int, int]:
        """Unique ``(base station, sector)`` pair this cell belongs to."""
        return (self.base_station_id, self.sector_index)


@dataclass
class Sector:
    """All cells of one base station pointing in one direction."""

    base_station_id: int
    sector_index: int
    azimuth_deg: float
    cells: list[Cell] = field(default_factory=list)

    def cell_on(self, carrier_name: str) -> Cell | None:
        """The sector's cell on the named carrier, if deployed."""
        for cell in self.cells:
            if cell.carrier.name == carrier_name:
                return cell
        return None

    @property
    def carrier_names(self) -> list[str]:
        """Names of carriers deployed in this sector."""
        return [cell.carrier.name for cell in self.cells]


@dataclass
class BaseStation:
    """A cell site: a location hosting several sectors."""

    base_station_id: int
    location: Point
    sectors: list[Sector] = field(default_factory=list)

    @property
    def cells(self) -> list[Cell]:
        """Every cell across all sectors of this site."""
        return [cell for sector in self.sectors for cell in sector.cells]

    def sector_for_bearing(self, bearing: float) -> Sector:
        """The sector whose boresight is closest to the given bearing."""
        if not self.sectors:
            raise ValueError(f"base station {self.base_station_id} has no sectors")

        def angular_gap(sector: Sector) -> float:
            diff = abs(bearing - sector.azimuth_deg) % 360.0
            return min(diff, 360.0 - diff)

        return min(self.sectors, key=angular_gap)
