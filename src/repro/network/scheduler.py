"""A discrete-time PRB scheduler for single-cell saturation experiments.

Figure 1 of the paper shows a controlled experiment: one device starts a
long greedy download in each of two live cells at 20:45 and drives PRB
utilization to ~100% for four hours.  This module reproduces the mechanism:
a cell has a fixed number of schedulable PRBs per second; inelastic
background traffic (other users) consumes a diurnal share of them; greedy
full-buffer downloads absorb whatever is left.  Utilization is reported per
15-minute bin, the granularity of the paper's counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.algorithms.timebins import BIN_SECONDS

#: Achievable downlink rate of one PRB continuously scheduled for one second.
#: 100 PRBs at ~0.75 Mbps each give the ~75 Mbps a clean 20 MHz LTE carrier
#: delivers, which is the right order of magnitude for the experiment.
DEFAULT_BPS_PER_PRB = 750_000.0


@dataclass
class DownloadFlow:
    """A greedy download injected into the cell.

    ``size_bytes`` of ``None`` means a full-buffer flow that never finishes
    on its own and stops only at ``stop_time`` (if given) or the end of the
    simulation.
    """

    flow_id: str
    start_time: float
    size_bytes: float | None = None
    stop_time: float | None = None
    transferred_bytes: float = field(default=0.0, init=False)
    completion_time: float | None = field(default=None, init=False)

    def active_at(self, t: float) -> bool:
        """Whether the flow still wants resources at time ``t``."""
        if t < self.start_time:
            return False
        if self.completion_time is not None:
            return False
        if self.stop_time is not None and t >= self.stop_time:
            return False
        return True

    def remaining_bytes(self) -> float:
        """Bytes left to transfer; infinite for full-buffer flows."""
        if self.size_bytes is None:
            return float("inf")
        return max(0.0, self.size_bytes - self.transferred_bytes)


@dataclass(frozen=True)
class SchedulerResult:
    """Outcome of a scheduler run."""

    #: Mean PRB utilization per 15-minute bin, including background load.
    bin_utilization: npt.NDArray[np.float64]
    #: Mean PRB utilization per bin from background traffic alone.
    background_utilization: npt.NDArray[np.float64]
    #: The flows after simulation (transferred bytes / completion filled in).
    flows: list[DownloadFlow]

    def saturated_bins(self, threshold: float = 0.95) -> npt.NDArray[np.intp]:
        """Indices of bins where utilization meets or exceeds ``threshold``."""
        return np.nonzero(self.bin_utilization >= threshold)[0]


class PRBScheduler:
    """Simulates PRB allocation in one cell over a time horizon.

    Parameters
    ----------
    prb_capacity:
        Schedulable PRBs (treated as a per-second budget of PRB-seconds).
    background:
        Per-bin background utilization fractions in ``[0, 1]``; entry ``i``
        applies to simulation times in bin ``i``.  Typically a slice of
        :meth:`repro.network.load.CellLoadModel.series`.
    bps_per_prb:
        Bits per second delivered by one PRB held for a full second;
        converts residual PRBs into flow throughput.
    step_seconds:
        Simulation step; flows are advanced and utilization accumulated at
        this granularity.
    """

    def __init__(
        self,
        prb_capacity: int,
        background: npt.NDArray[np.float64],
        bps_per_prb: float = DEFAULT_BPS_PER_PRB,
        step_seconds: float = 60.0,
    ) -> None:
        if prb_capacity <= 0:
            raise ValueError(f"prb_capacity must be positive, got {prb_capacity}")
        if step_seconds <= 0 or step_seconds > BIN_SECONDS:
            raise ValueError(
                f"step_seconds must be in (0, {BIN_SECONDS}], got {step_seconds}"
            )
        bg = np.asarray(background, dtype=np.float64)
        if bg.ndim != 1 or bg.size == 0:
            raise ValueError("background must be a non-empty 1-D array")
        if np.any(bg < 0) or np.any(bg > 1):
            raise ValueError("background utilization must lie in [0, 1]")
        self.prb_capacity = prb_capacity
        self.background = bg
        self.bps_per_prb = bps_per_prb
        self.step_seconds = step_seconds

    @property
    def horizon_seconds(self) -> float:
        """Simulated duration implied by the background series."""
        return self.background.size * BIN_SECONDS

    def run(self, flows: list[DownloadFlow] | None = None) -> SchedulerResult:
        """Simulate the full horizon with the given greedy flows."""
        flows = list(flows or [])
        n_bins = self.background.size
        util_sum = np.zeros(n_bins)
        steps_per_bin = int(round(BIN_SECONDS / self.step_seconds))
        capacity_prb_seconds = self.prb_capacity * self.step_seconds

        for b in range(n_bins):
            bg_fraction = float(self.background[b])
            for s in range(steps_per_bin):
                t = b * BIN_SECONDS + s * self.step_seconds
                bg_prbs = bg_fraction * capacity_prb_seconds
                residual = capacity_prb_seconds - bg_prbs
                active = [f for f in flows if f.active_at(t)]
                used = 0.0
                if active and residual > 0:
                    share = residual / len(active)
                    for f in active:
                        # Convert the flow's remaining bytes into the
                        # PRB-seconds needed to move them this step.
                        rem = f.remaining_bytes()
                        need = (
                            math.inf
                            if math.isinf(rem)
                            else rem * 8.0 / self.bps_per_prb
                        )
                        got = min(share, need)
                        f.transferred_bytes += got * self.bps_per_prb / 8.0
                        used += got
                        if f.size_bytes is not None and f.remaining_bytes() <= 1e-6:
                            f.completion_time = t + self.step_seconds
                util_sum[b] += (bg_prbs + used) / capacity_prb_seconds
        return SchedulerResult(
            bin_utilization=util_sum / steps_per_bin,
            background_utilization=self.background.copy(),
            flows=flows,
        )
