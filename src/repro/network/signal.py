"""Radio signal propagation: path loss, RSRP, SINR and handover hysteresis.

The trace generator's geometric serving rule (nearest site, best-pointing
sector) is a fast approximation of what real devices do: camp on the
strongest *signal*.  This module supplies the physical layer for analyses
that need it — a log-distance path-loss model with a frequency term (higher
bands fade faster, one reason the low-band C1/C2 carriers blanket the rural
fringe), a cosine-shaped sector antenna pattern, RSRP-based server selection
and the A3-style hysteresis rule that keeps real handover rates far below
"handover at every geometric boundary".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.network.cells import Cell
from repro.network.geometry import Point, bearing_deg, distance
from repro.network.topology import NetworkTopology

#: Noise floor over one LTE PRB (~180 kHz) at a typical UE noise figure, dBm.
NOISE_FLOOR_DBM = -116.4


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with a frequency-dependent intercept.

    ``PL(d) = intercept + 20 log10(f_MHz) + 10 n log10(max(d, d_min))`` —
    the COST-Hata shape reduced to its distance/frequency essentials, which
    is all the serving-selection and SINR comparisons here need.
    """

    exponent: float = 3.5
    intercept_db: float = 32.4
    min_distance_km: float = 0.01

    def loss_db(self, distance_km: float, frequency_mhz: float) -> float:
        """Path loss in dB over ``distance_km`` at ``frequency_mhz``."""
        if frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_mhz}")
        d = max(distance_km, self.min_distance_km)
        return (
            self.intercept_db
            + 20.0 * math.log10(frequency_mhz)
            + 10.0 * self.exponent * math.log10(d)
        )


def antenna_gain_db(
    boresight_deg: float,
    bearing: float,
    max_gain_db: float = 15.0,
    front_to_back_db: float = 25.0,
) -> float:
    """Directional gain of a ~120-degree sector antenna.

    Cosine-power main lobe around the boresight with a hard front-to-back
    floor; at 60 degrees off boresight (the sector edge) the gain is several
    dB down, which is what makes neighbouring sectors overlap rather than
    tile perfectly.
    """
    off = abs((bearing - boresight_deg + 180.0) % 360.0 - 180.0)
    if off >= 90.0:
        return max_gain_db - front_to_back_db
    rolloff = 12.0 * (off / 65.0) ** 2  # 3GPP-style parabolic main lobe
    return max_gain_db - min(rolloff, front_to_back_db)


class SignalMap:
    """RSRP/SINR queries over a built topology.

    Parameters
    ----------
    topology:
        The radio network.
    tx_power_dbm:
        Per-PRB reference-signal transmit power.
    path_loss:
        Propagation model; defaults to the suburban-ish exponent 3.5.
    """

    def __init__(
        self,
        topology: NetworkTopology,
        tx_power_dbm: float = 15.0,
        path_loss: PathLossModel | None = None,
    ) -> None:
        self.topology = topology
        self.tx_power_dbm = tx_power_dbm
        self.path_loss = path_loss or PathLossModel()

    def rsrp_dbm(self, cell: Cell, location: Point) -> float:
        """Reference-signal received power from ``cell`` at ``location``."""
        d = distance(cell.location, location)
        bearing = bearing_deg(cell.location, location)
        return (
            self.tx_power_dbm
            - self.path_loss.loss_db(d, cell.carrier.frequency_mhz)
            + antenna_gain_db(cell.azimuth_deg, bearing)
        )

    def candidates(
        self,
        location: Point,
        capabilities: frozenset[str] | set[str] | None = None,
        n_sites: int = 5,
    ) -> list[tuple[Cell, float]]:
        """Cells of the ``n_sites`` nearest sites ranked by RSRP.

        Limiting the neighbour set to nearby sites keeps queries O(sites
        considered), matching how real measurement reports only contain a
        handful of neighbours.
        """
        if self.topology._tree is None:
            raise RuntimeError("topology has no spatial index (no sites?)")
        k = min(n_sites, len(self.topology.sites))
        _, idx = self.topology._tree.query([location.x, location.y], k=k)
        idx = np.atleast_1d(idx)
        ranked: list[tuple[Cell, float]] = []
        for i in idx:
            for cell in self.topology.sites[int(i)].cells:
                if capabilities is not None and cell.carrier.name not in capabilities:
                    continue
                ranked.append((cell, self.rsrp_dbm(cell, location)))
        ranked.sort(key=lambda pair: pair[1], reverse=True)
        return ranked

    def best_server(
        self,
        location: Point,
        capabilities: frozenset[str] | set[str] | None = None,
    ) -> tuple[Cell, float] | None:
        """Strongest cell at ``location`` among supported carriers."""
        ranked = self.candidates(location, capabilities)
        return ranked[0] if ranked else None

    def sinr_db(
        self,
        cell: Cell,
        location: Point,
        neighbour_load: float = 0.5,
        n_sites: int = 5,
    ) -> float:
        """Downlink SINR on ``cell`` at ``location``.

        Interference is the power sum of co-channel neighbours (same
        carrier) scaled by their activity factor ``neighbour_load`` — a
        loaded network interferes more, which is the coupling between the
        U_PRB counters and user experience.
        """
        if not 0 <= neighbour_load <= 1:
            raise ValueError(f"neighbour_load must be in [0, 1], got {neighbour_load}")
        signal_mw = 10 ** (self.rsrp_dbm(cell, location) / 10.0)
        interference_mw = 0.0
        for other, rsrp in self.candidates(location, None, n_sites=n_sites):
            if other.cell_id == cell.cell_id:
                continue
            if other.carrier.name != cell.carrier.name:
                continue
            interference_mw += neighbour_load * 10 ** (rsrp / 10.0)
        noise_mw = 10 ** (NOISE_FLOOR_DBM / 10.0)
        return 10.0 * math.log10(signal_mw / (interference_mw + noise_mw))


def hysteresis_handover(
    current_rsrp_dbm: float,
    best_neighbour_rsrp_dbm: float,
    margin_db: float = 3.0,
) -> bool:
    """A3-event rule: hand over only when a neighbour beats the serving cell
    by at least ``margin_db``.

    Hysteresis is why cars do not ping-pong between sectors at every
    geometric boundary — and one reason the paper sees few intra-site
    handovers.
    """
    if margin_db < 0:
        raise ValueError(f"margin must be non-negative, got {margin_db}")
    return best_neighbour_rsrp_dbm > current_rsrp_dbm + margin_db
