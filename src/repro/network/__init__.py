"""Cellular network substrate: geometry, radio topology, diurnal load and a
PRB scheduler.

The paper's measurements come from a production LTE/3G network.  This package
models the pieces of that network the analyses depend on: base stations split
into ~120-degree sectors, each sector hosting one cell per radio carrier
(frequency band), per-cell Physical Resource Block (PRB) utilization in
15-minute bins, and a simple PRB scheduler used to reproduce the Figure 1
saturation experiment.
"""

from repro.network.capacity import achievable_rate_bps, spectral_efficiency
from repro.network.cells import (
    CARRIERS,
    BaseStation,
    Carrier,
    Cell,
    RadioTechnology,
    Sector,
)
from repro.network.coverage import carrier_deployment_share, sample_coverage
from repro.network.geometry import Point, bearing_deg, distance, hex_grid
from repro.network.load import CellLoadModel, LoadProfile
from repro.network.scheduler import DownloadFlow, PRBScheduler, SchedulerResult
from repro.network.signal import PathLossModel, SignalMap, hysteresis_handover
from repro.network.topology import NetworkTopology, TopologyConfig, build_topology

__all__ = [
    "CARRIERS",
    "BaseStation",
    "Carrier",
    "Cell",
    "CellLoadModel",
    "DownloadFlow",
    "LoadProfile",
    "NetworkTopology",
    "PRBScheduler",
    "PathLossModel",
    "Point",
    "SignalMap",
    "RadioTechnology",
    "SchedulerResult",
    "Sector",
    "TopologyConfig",
    "achievable_rate_bps",
    "carrier_deployment_share",
    "sample_coverage",
    "bearing_deg",
    "build_topology",
    "hysteresis_handover",
    "spectral_efficiency",
    "distance",
    "hex_grid",
]
