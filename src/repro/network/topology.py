"""Synthetic radio network topology for a metro region.

Base stations are laid out on hexagonal grids whose pitch depends on the
distance from the metro core: dense in the urban center, sparser in suburbs,
sparsest in the rural fringe — mirroring real deployments where capacity
follows population.  Each site hosts three ~120-degree sectors, and each
sector deploys a tier-dependent subset of the five carriers (newer high-band
carriers appear only in the urban core, like the paper's barely-used C5).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt
from scipy.spatial import cKDTree  # type: ignore[import-untyped]

from repro.network.cells import CARRIERS, BaseStation, Cell, Sector
from repro.network.geometry import Point, bearing_deg, distance, hex_grid


class Tier(enum.Enum):
    """Deployment density tier of a site, by distance from the metro core."""

    URBAN = "urban"
    SUBURBAN = "suburban"
    RURAL = "rural"


@dataclass(frozen=True)
class TopologyConfig:
    """Knobs of the synthetic topology.

    The defaults produce a ~40 km x 40 km region with on the order of 100
    sites and several hundred cells — large enough that a car fleet touches
    only a subset of cells on any given day (Figure 2's ~66% of cells), small
    enough to simulate quickly.
    """

    width_km: float = 48.0
    height_km: float = 48.0
    urban_radius_km: float = 8.0
    suburban_radius_km: float = 19.0
    #: Hex-grid pitch per tier, km between neighbouring sites.
    urban_pitch_km: float = 3.0
    suburban_pitch_km: float = 4.5
    rural_pitch_km: float = 5.5
    sectors_per_site: int = 3
    #: Carriers deployed per tier.  C5 is urban-only: a new band most of the
    #: studied cars' modems cannot use (Table 3).
    urban_carriers: tuple[str, ...] = ("C1", "C2", "C3", "C4", "C5")
    suburban_carriers: tuple[str, ...] = ("C1", "C2", "C3", "C4")
    rural_carriers: tuple[str, ...] = ("C1", "C2", "C3")
    seed: int = 7

    @property
    def center(self) -> Point:
        """Metro core location."""
        return Point(self.width_km / 2.0, self.height_km / 2.0)

    def tier_of(self, location: Point) -> Tier:
        """Deployment tier of a location by distance from the core."""
        r = distance(location, self.center)
        if r <= self.urban_radius_km:
            return Tier.URBAN
        if r <= self.suburban_radius_km:
            return Tier.SUBURBAN
        return Tier.RURAL

    def carriers_for(self, tier: Tier) -> tuple[str, ...]:
        """Carrier names deployed at sites of the given tier."""
        if tier is Tier.URBAN:
            return self.urban_carriers
        if tier is Tier.SUBURBAN:
            return self.suburban_carriers
        return self.rural_carriers


@dataclass
class NetworkTopology:
    """A built radio network: sites, sectors, cells and spatial lookup."""

    config: TopologyConfig
    sites: list[BaseStation]
    cells: dict[int, Cell] = field(default_factory=dict)
    _tree: cKDTree | None = field(default=None, repr=False)
    #: Per-site (x, y, base_station_id, ((azimuth, sector_index), ...)) rows
    #: for the allocation-free fast path in :meth:`serving_sector_keys`.
    _site_rows: list | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.cells:
            self.cells = {c.cell_id: c for site in self.sites for c in site.cells}
        coords = np.asarray([(s.location.x, s.location.y) for s in self.sites])
        self._tree = cKDTree(coords)
        self._site_rows = [
            (
                s.location.x,
                s.location.y,
                s.base_station_id,
                tuple((sec.azimuth_deg, sec.sector_index) for sec in s.sectors),
            )
            for s in self.sites
        ]
        #: (sector_key, carrier) -> (sector, cell_or_None) memo.
        self._sector_cell_cache: dict[
            tuple[tuple[int, int], str], tuple[Sector, Cell | None]
        ] = {}
        #: Cached usable-cell lists and draw CDFs for the fallback pick in
        #: :meth:`choose_cell_in_sector`.
        self._choice_cache: dict[
            tuple[int, int, frozenset[str], tuple[tuple[str, float], ...] | None],
            tuple[list[Cell], npt.NDArray[np.float64] | None],
        ] = {}

    @property
    def n_cells(self) -> int:
        """Total number of cells in the network."""
        return len(self.cells)

    def cell(self, cell_id: int) -> Cell:
        """Cell by id; raises ``KeyError`` for unknown ids."""
        return self.cells[cell_id]

    def nearest_site(self, location: Point) -> BaseStation:
        """The geographically closest base station to ``location``."""
        if self._tree is None:
            raise RuntimeError("topology has no spatial index (no sites?)")
        _, idx = self._tree.query([location.x, location.y])
        return self.sites[int(idx)]

    def serving_sector(self, location: Point) -> Sector:
        """Sector of the nearest site whose boresight best covers ``location``."""
        site = self.nearest_site(location)
        return site.sector_for_bearing(bearing_deg(site.location, location))

    def serving_sector_keys(
        self, xs: npt.NDArray[np.float64], ys: npt.NDArray[np.float64]
    ) -> list[tuple[int, int]]:
        """Serving ``(base station id, sector index)`` for many locations.

        Equivalent to :meth:`serving_sector` per point, but with a single
        batched nearest-site query — the fast path for sampling road edges.
        """
        _, idxs = self._tree.query(np.column_stack((xs, ys)))
        rows = self._site_rows
        atan2 = math.atan2
        degrees = math.degrees
        keys: list[tuple[int, int]] = []
        for i, x, y in zip(np.atleast_1d(idxs).tolist(), xs.tolist(), ys.tolist()):
            sx, sy, bs_id, sectors = rows[i]
            # Inlined bearing_deg/sector_for_bearing: same arithmetic and
            # the same first-minimum tie-breaking as min(key=angular_gap),
            # without Point/closure allocations per sample.
            bearing = degrees(atan2(x - sx, y - sy)) % 360.0
            best_gap = 361.0
            best_idx = 0
            for az, s_idx in sectors:
                diff = abs(bearing - az) % 360.0
                gap = 360.0 - diff if diff > 180.0 else diff
                if gap < best_gap:
                    best_gap = gap
                    best_idx = s_idx
            keys.append((bs_id, best_idx))
        return keys

    def sector(self, base_station_id: int, sector_index: int) -> Sector:
        """Sector by its ``(base station id, sector index)`` key."""
        site = self.sites[base_station_id - 1]
        if site.base_station_id != base_station_id:
            raise KeyError(f"unknown base station id {base_station_id}")
        return site.sectors[sector_index]

    def sector_cell(
        self, sector_key: tuple[int, int], carrier: str
    ) -> tuple[Sector, Cell | None]:
        """The sector for a key and its cell on ``carrier``, memoized.

        Trace generation resolves the same few thousand (sector, carrier)
        pairs millions of times; the memo turns each resolution into one
        dict hit.
        """
        cache_key = (sector_key, carrier)
        entry = self._sector_cell_cache.get(cache_key)
        if entry is None:
            sector = self.sector(*sector_key)
            entry = (sector, sector.cell_on(carrier))
            self._sector_cell_cache[cache_key] = entry
        return entry

    def choose_cell_in_sector(
        self,
        sector: Sector,
        capabilities: frozenset[str] | set[str],
        rng: np.random.Generator,
        carrier_weights: dict[str, float] | None = None,
    ) -> Cell | None:
        """Weighted carrier pick among a sector's cells the device supports.

        Mimics load-balanced carrier assignment: the serving sector is fixed
        by geometry, the carrier within it is a weighted draw.  Returns
        ``None`` when the device supports none of the sector's carriers.
        """
        caps = (
            capabilities
            if isinstance(capabilities, frozenset)
            else frozenset(capabilities)
        )
        wkey = None if carrier_weights is None else tuple(carrier_weights.items())
        cache_key = (sector.base_station_id, sector.sector_index, caps, wkey)
        entry = self._choice_cache.get(cache_key)
        if entry is None:
            usable = [c for c in sector.cells if c.carrier.name in caps]
            if usable:
                if carrier_weights is None:
                    weights = np.ones(len(usable))
                else:
                    weights = np.asarray(
                        [carrier_weights.get(c.carrier.name, 0.0) for c in usable],
                        dtype=float,
                    )
                    if weights.sum() <= 0:
                        weights = np.ones(len(usable))
                weights = weights / weights.sum()
                # rng.choice(n, p=p) draws one uniform and inverts this same
                # CDF, so the cached-CDF draw below consumes the stream and
                # picks the index bit-identically.
                cdf = weights.cumsum()
                cdf /= cdf[-1]
            else:
                cdf = None
            entry = (usable, cdf)
            self._choice_cache[cache_key] = entry
        usable, cdf = entry
        if not usable:
            return None
        return usable[int(cdf.searchsorted(rng.random(), side="right"))]

    def serving_cell(
        self,
        location: Point,
        capabilities: frozenset[str] | set[str],
        rng: np.random.Generator,
        carrier_weights: dict[str, float] | None = None,
    ) -> Cell | None:
        """Pick the cell a device at ``location`` would connect to.

        The serving sector is geometric (nearest site, best-pointing sector);
        the carrier within it follows :meth:`choose_cell_in_sector`.
        """
        sector = self.serving_sector(location)
        return self.choose_cell_in_sector(sector, capabilities, rng, carrier_weights)

    def cells_of_site(self, base_station_id: int) -> list[Cell]:
        """All cells hosted by the given base station."""
        return [c for c in self.cells.values() if c.base_station_id == base_station_id]


def build_topology(config: TopologyConfig | None = None) -> NetworkTopology:
    """Construct the synthetic network described by ``config``.

    Sites come from three hexagonal lattices (one per tier pitch); a lattice
    point is kept only where its pitch matches the local tier, which yields a
    density gradient from core to fringe without overlapping sites.
    """
    cfg = config or TopologyConfig()
    rng = np.random.default_rng(cfg.seed)
    site_locations: list[Point] = []
    for pitch, tier in (
        (cfg.urban_pitch_km, Tier.URBAN),
        (cfg.suburban_pitch_km, Tier.SUBURBAN),
        (cfg.rural_pitch_km, Tier.RURAL),
    ):
        for p in hex_grid(cfg.width_km, cfg.height_km, pitch):
            # Small jitter so sites do not sit on perfectly regular lines.
            jitter = Point(*(rng.uniform(-0.15, 0.15, size=2) * pitch))
            loc = p + jitter
            loc = Point(
                min(max(loc.x, 0.0), cfg.width_km), min(max(loc.y, 0.0), cfg.height_km)
            )
            if cfg.tier_of(p) is tier:
                site_locations.append(loc)

    sites: list[BaseStation] = []
    next_cell_id = 1
    for site_id, loc in enumerate(site_locations, start=1):
        tier = cfg.tier_of(loc)
        carriers = cfg.carriers_for(tier)
        site = BaseStation(base_station_id=site_id, location=loc)
        for sector_index in range(cfg.sectors_per_site):
            azimuth = (360.0 / cfg.sectors_per_site) * sector_index
            sector = Sector(
                base_station_id=site_id, sector_index=sector_index, azimuth_deg=azimuth
            )
            for name in carriers:
                sector.cells.append(
                    Cell(
                        cell_id=next_cell_id,
                        base_station_id=site_id,
                        sector_index=sector_index,
                        carrier=CARRIERS[name],
                        location=loc,
                        azimuth_deg=azimuth,
                    )
                )
                next_cell_id += 1
            site.sectors.append(sector)
        sites.append(site)
    return NetworkTopology(config=cfg, sites=sites)
