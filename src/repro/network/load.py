"""Per-cell Physical Resource Block (PRB) utilization model.

The paper classifies each cell as busy or non-busy per 15-minute bin using
the average PRB utilization U_PRB (busy when U_PRB > 80%), selects "very busy"
cells by mean weekly utilization >= 70% (Figure 11) and overlays load curves
on concurrency plots (Figures 1 and 10).  Production networks export these
counters; here we synthesize them.

Each cell gets a weekly utilization template built from a diurnal shape —
low overnight, a morning commute bump, a broad evening peak spanning the
network busy hours (roughly 14:00-24:00 per Section 4.2) and a flatter, later
weekend profile — scaled between a per-cell floor and ceiling.  Ceilings
depend on the deployment tier (urban cells run hotter) and a fraction of
cells are "hot": persistently loaded cells of the kind Figure 11 clusters.
Deterministic per-(cell, day) noise makes day-to-day variation reproducible
without storing the full 90-day series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.timebins import BINS_PER_DAY, BINS_PER_WEEK, StudyClock
from repro.network.geometry import distance
from repro.network.topology import NetworkTopology, Tier


def _bump(
    hours: npt.NDArray[np.float64], center: float, width: float
) -> npt.NDArray[np.float64]:
    """Gaussian bump over hour-of-day, wrapping around midnight."""
    delta = np.minimum(np.abs(hours - center), 24.0 - np.abs(hours - center))
    bump: npt.NDArray[np.float64] = np.exp(-0.5 * (delta / width) ** 2)
    return bump


def weekday_shape() -> npt.NDArray[np.float64]:
    """Normalized weekday diurnal shape, 96 bins, values in [0, 1]."""
    hours = np.arange(BINS_PER_DAY) / 4.0
    curve = (
        0.18
        + 0.45 * _bump(hours, 8.0, 1.6)
        + 0.55 * _bump(hours, 13.0, 3.0)
        + 1.00 * _bump(hours, 19.0, 3.8)
    )
    return curve / curve.max()


def weekend_shape() -> npt.NDArray[np.float64]:
    """Normalized weekend diurnal shape: later start, flatter afternoon."""
    hours = np.arange(BINS_PER_DAY) / 4.0
    curve = (
        0.20
        + 0.65 * _bump(hours, 12.5, 3.5)
        + 0.90 * _bump(hours, 18.5, 4.2)
    )
    shape: npt.NDArray[np.float64] = curve / curve.max()
    return shape


@dataclass(frozen=True)
class LoadProfile:
    """Static load parameters of one cell."""

    floor: float
    ceiling: float
    hot: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.floor <= self.ceiling <= 1.0:
            raise ValueError(
                f"need 0 <= floor <= ceiling <= 1, got {self.floor}, {self.ceiling}"
            )


#: Mean utilization ceiling by deployment tier.  Production macro networks
#: run hot at peak: most urban cells cross the 80% busy bar during the
#: evening busy hours.
_TIER_CEILING = {Tier.URBAN: 0.86, Tier.SUBURBAN: 0.81, Tier.RURAL: 0.52}
#: Probability that a site outside the hot district is "hot" (persistently
#: loaded), by tier.
_TIER_HOT_PROB = {Tier.URBAN: 0.06, Tier.SUBURBAN: 0.05, Tier.RURAL: 0.01}
#: Radius around the metro core inside which every site is hot — the
#: congested downtown district that gives some cars a busy-cell-dominated
#: life (Figure 7's tail).
HOT_DISTRICT_RADIUS_KM = 3.0


class CellLoadModel:
    """Deterministic synthetic PRB utilization for every cell of a topology.

    Parameters
    ----------
    topology:
        The radio network whose cells need load series.
    clock:
        Study calendar (length, starting weekday).
    seed:
        Root seed; all per-cell parameters and per-day noise derive from it,
        so two models built with the same arguments agree bin for bin.
    noise_std:
        Standard deviation of the per-bin utilization noise.
    """

    def __init__(
        self,
        topology: NetworkTopology,
        clock: StudyClock,
        seed: int = 11,
        noise_std: float = 0.03,
        hot_district_radius_km: float = HOT_DISTRICT_RADIUS_KM,
    ) -> None:
        self.topology = topology
        self.clock = clock
        self.seed = seed
        self.noise_std = noise_std
        self.hot_district_radius_km = hot_district_radius_km
        self._profiles: dict[int, LoadProfile] = {}
        self._templates: dict[int, npt.NDArray[np.float64]] = {}
        self._wd_shape = weekday_shape()
        self._we_shape = weekend_shape()
        self._assign_profiles()

    def _assign_profiles(self) -> None:
        rng = np.random.default_rng(self.seed)
        # Hotness is a property of the *site*: loaded areas load every cell
        # of the serving base station, which is what lets some cars spend
        # most of their connected time on busy radios (Figure 7's tail).
        center = self.topology.config.center
        hot_sites: dict[int, bool] = {}
        for site in self.topology.sites:
            in_district = (
                distance(site.location, center) <= self.hot_district_radius_km
            )
            random_hot = bool(
                rng.random()
                < _TIER_HOT_PROB[self.topology.config.tier_of(site.location)]
            )
            hot_sites[site.base_station_id] = in_district or random_hot
        for cell_id in sorted(self.topology.cells):
            cell = self.topology.cell(cell_id)
            tier = self.topology.config.tier_of(cell.location)
            hot = hot_sites[cell.base_station_id]
            if hot:
                ceiling = float(min(max(rng.normal(0.96, 0.02), 0.88), 1.0))
                floor = float(min(max(rng.normal(0.68, 0.04), 0.55), 0.78))
            else:
                ceiling = float(
                    min(max(rng.normal(_TIER_CEILING[tier], 0.10), 0.10), 0.92)
                )
                floor = float(min(max(rng.normal(0.12, 0.04), 0.02), 0.30))
            if floor > ceiling:
                floor, ceiling = ceiling, floor
            self._profiles[cell_id] = LoadProfile(floor=floor, ceiling=ceiling, hot=hot)

    def profile(self, cell_id: int) -> LoadProfile:
        """Static load parameters of a cell."""
        return self._profiles[cell_id]

    def weekly_template(self, cell_id: int) -> npt.NDArray[np.float64]:
        """Noise-free weekly utilization template, 672 bins starting Monday.

        The template always starts on Monday regardless of the study's start
        weekday; callers indexing by study time should use
        :meth:`utilization` or :meth:`series`, which apply the calendar.
        """
        cached = self._templates.get(cell_id)
        if cached is not None:
            return cached
        prof = self._profiles[cell_id]
        days: list[npt.NDArray[np.float64]] = []
        for weekday in range(7):
            shape = self._we_shape if weekday >= 5 else self._wd_shape
            days.append(prof.floor + (prof.ceiling - prof.floor) * shape)
        template: npt.NDArray[np.float64] = np.concatenate(days)
        if template.shape != (BINS_PER_WEEK,):
            raise RuntimeError(
                f"weekly template has shape {template.shape}, "
                f"expected ({BINS_PER_WEEK},)"
            )
        self._templates[cell_id] = template
        return template

    def _day_noise(self, cell_id: int, day: int) -> npt.NDArray[np.float64]:
        day_rng = np.random.default_rng(
            (self.seed * 1_000_003 + cell_id) * 131 + day
        )
        noise: npt.NDArray[np.float64] = day_rng.normal(
            0.0, self.noise_std, size=BINS_PER_DAY
        )
        return noise

    def day_series(self, cell_id: int, day: int) -> npt.NDArray[np.float64]:
        """Utilization of one cell for one study day, 96 bins in [0.01, 1]."""
        weekday = (day + self.clock.start_weekday) % 7
        shape = self._we_shape if weekday >= 5 else self._wd_shape
        prof = self._profiles[cell_id]
        series = prof.floor + (prof.ceiling - prof.floor) * shape
        series = series + self._day_noise(cell_id, day)
        clipped: npt.NDArray[np.float64] = np.clip(series, 0.01, 1.0)
        return clipped

    def utilization(self, cell_id: int, t: float) -> float:
        """U_PRB of a cell in the 15-minute bin containing study time ``t``."""
        day = self.clock.day_index(t)
        return float(self.day_series(cell_id, day)[self.clock.bin15_of_day(t)])

    def series(
        self, cell_id: int, n_days: int | None = None
    ) -> npt.NDArray[np.float64]:
        """Full utilization series for a cell, ``n_days * 96`` bins."""
        days = self.clock.n_days if n_days is None else n_days
        series: npt.NDArray[np.float64] = np.concatenate(
            [self.day_series(cell_id, d) for d in range(days)]
        )
        return series

    def mean_weekly_utilization(self, cell_id: int) -> float:
        """Mean of the cell's noise-free weekly template.

        This is the statistic Figure 11 thresholds at 70% to select very busy
        cells.
        """
        return float(self.weekly_template(cell_id).mean())

    def busy_bins(
        self, cell_id: int, threshold: float = 0.80
    ) -> npt.NDArray[np.bool_]:
        """Boolean mask over the full study of bins where U_PRB > threshold."""
        mask: npt.NDArray[np.bool_] = self.series(cell_id) > threshold
        return mask

    def busy_cell_ids(self, mean_threshold: float = 0.70) -> list[int]:
        """Cells whose mean weekly utilization is at least ``mean_threshold``."""
        return [
            cid
            for cid in sorted(self.topology.cells)
            if self.mean_weekly_utilization(cid) >= mean_threshold
        ]


def expected_peak_hours() -> list[int]:
    """Hours of day (local) inside the network busy window used in Section 4.2.

    The paper treats roughly 14:00-24:00 as network busy hours.
    """
    return list(range(14, 24))


def bin_of_hour(hour: float) -> int:
    """15-minute bin index within a day for a fractional hour of day."""
    if not 0 <= hour < 24:
        raise ValueError(f"hour must be in [0, 24), got {hour}")
    return int(math.floor(hour * 4))
