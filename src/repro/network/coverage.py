"""Carrier coverage over the region.

Table 3's carrier reach has two physical causes: where each band is
*deployed* (C5 urban-only; C4 absent from the rural fringe) and how far each
band *carries* (low-band signals out-range high-band at equal power).  This
module quantifies both: deployment share from the inventory, and radio
coverage by sampling RSRP over a grid — the map view behind "cars can
connect to and use most available carriers today ... this may change as new
carriers are added" (Section 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.geometry import Point
from repro.network.signal import SignalMap
from repro.network.topology import NetworkTopology

#: RSRP at which an LTE UE reliably camps, dBm.
DEFAULT_RSRP_THRESHOLD_DBM = -110.0


def carrier_deployment_share(topology: NetworkTopology) -> dict[str, float]:
    """Fraction of sectors deploying each carrier."""
    totals: dict[str, int] = {}
    n_sectors = 0
    for site in topology.sites:
        for sector in site.sectors:
            n_sectors += 1
            for name in sector.carrier_names:
                totals[name] = totals.get(name, 0) + 1
    if n_sectors == 0:
        return {}
    return {name: count / n_sectors for name, count in sorted(totals.items())}


@dataclass(frozen=True)
class CoverageResult:
    """Sampled radio coverage per carrier."""

    #: Fraction of sampled points with RSRP above threshold, per carrier.
    covered_fraction: dict[str, float]
    rsrp_threshold_dbm: float
    n_points: int

    def best_covered(self) -> str:
        """Carrier with the widest radio coverage."""
        if not self.covered_fraction:
            raise ValueError("no carriers sampled")
        return max(self.covered_fraction, key=lambda c: self.covered_fraction[c])


def sample_coverage(
    signal_map: SignalMap,
    carriers: tuple[str, ...] = ("C1", "C2", "C3", "C4", "C5"),
    grid_pitch_km: float = 3.0,
    rsrp_threshold_dbm: float = DEFAULT_RSRP_THRESHOLD_DBM,
) -> CoverageResult:
    """Sample the region on a grid and test each carrier's best RSRP.

    A point counts as covered on a carrier when any nearby cell of that
    carrier delivers RSRP above the threshold.
    """
    if grid_pitch_km <= 0:
        raise ValueError(f"grid_pitch_km must be positive, got {grid_pitch_km}")
    cfg = signal_map.topology.config
    xs = np.arange(grid_pitch_km / 2, cfg.width_km, grid_pitch_km)
    ys = np.arange(grid_pitch_km / 2, cfg.height_km, grid_pitch_km)
    covered = {c: 0 for c in carriers}
    n_points = 0
    for x in xs:
        for y in ys:
            n_points += 1
            point = Point(float(x), float(y))
            best: dict[str, float] = {}
            for cell, rsrp in signal_map.candidates(point, None, n_sites=4):
                name = cell.carrier.name
                if rsrp > best.get(name, -np.inf):
                    best[name] = rsrp
            for c in carriers:
                if best.get(c, -np.inf) >= rsrp_threshold_dbm:
                    covered[c] += 1
    return CoverageResult(
        covered_fraction={c: covered[c] / n_points for c in carriers},
        rsrp_threshold_dbm=rsrp_threshold_dbm,
        n_points=n_points,
    )
