"""Reproduction of "Connected cars in cellular network: A measurement study"
(Andrade et al., IMC 2017).

The library has three layers:

* **substrates** — a synthetic cellular network (:mod:`repro.network`), road
  and mobility models (:mod:`repro.mobility`), CDR data structures
  (:mod:`repro.cdr`) and generic algorithms (:mod:`repro.algorithms`);
* **trace generation** (:mod:`repro.simulate`) — the stand-in for the paper's
  proprietary data set of 1.1 billion radio connections;
* **analysis** (:mod:`repro.core`) — the paper's methodology, one module per
  analysis, plus a pipeline producing every table and figure.

Extensions in :mod:`repro.fota` (managed FOTA campaign planning) and
:mod:`repro.prediction` (per-car appearance prediction) build on the
analyses, implementing the management strategies the paper motivates.

Quickstart::

    from repro import SimulationConfig, TraceGenerator, AnalysisPipeline
    from repro.core.report import format_report

    dataset = TraceGenerator(SimulationConfig(n_cars=200)).generate()
    pipeline = AnalysisPipeline(
        dataset.clock, dataset.load_model, dataset.topology.cells
    )
    print(format_report(pipeline.run(dataset.batch)))
"""

from repro.algorithms.timebins import StudyClock
from repro.cdr.records import CDRBatch, ConnectionRecord
from repro.core.pipeline import AnalysisPipeline, AnalysisReport
from repro.simulate.config import SimulationConfig
from repro.simulate.generator import TraceDataset, TraceGenerator

__version__ = "1.0.0"

__all__ = [
    "AnalysisPipeline",
    "AnalysisReport",
    "CDRBatch",
    "ConnectionRecord",
    "SimulationConfig",
    "StudyClock",
    "TraceDataset",
    "TraceGenerator",
    "__version__",
]
