"""Incremental-ingest planning: shard scans, manifest diffs, fingerprints.

The service's perf centerpiece is never re-sweeping bytes it has already
seen.  This module provides the bookkeeping that makes that safe: a *scan*
lists the trace's shards in canonical fold order (``resolve_shards``
order) with each file's identity stamp, and a *diff* against the set of
identities the service already holds partials for says exactly which
shards need a map sweep.  Identity is ``(path, size, mtime_ns)`` — a shard
rewritten in place gets a new stamp and is treated as removed-plus-added,
so its stale partial can never be folded.

The scan also defines the trace fingerprint used in cache keys: any change
to the shard set (or any shard's bytes) rotates the fingerprint, which
retires every cached response computed over the old manifest.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.cdr.errors import CDRValidationError
from repro.cdr.store import resolve_shards
from repro.service.cache import fingerprint

#: What identifies one shard file's contents without reading it.
ShardKey = tuple[str, int, int]


@dataclass(frozen=True)
class ShardEntry:
    """One shard as seen by a scan, in canonical fold order."""

    path: str
    size: int
    mtime_ns: int

    @property
    def key(self) -> ShardKey:
        """The shard's identity stamp."""
        return (self.path, self.size, self.mtime_ns)


@dataclass(frozen=True)
class ManifestDiff:
    """What changed between the partial cache and a fresh scan."""

    #: Scan entries with no cached partial, paired with their scan index.
    added: tuple[tuple[int, ShardEntry], ...]
    #: Cached identities that no longer appear in the scan.
    removed: tuple[ShardKey, ...]
    #: Scan entries whose cached partial is still valid.
    unchanged: tuple[ShardEntry, ...]

    @property
    def changed(self) -> bool:
        """Whether the fold (and thus every cached result) is stale."""
        return bool(self.added or self.removed)


def scan_shards(source: str | Path) -> list[ShardEntry]:
    """List the trace's shards in fold order with identity stamps.

    Only ``stat`` calls — no shard is opened, so a scan over thousands of
    shards costs microseconds and can run on every ingest request.
    """
    entries: list[ShardEntry] = []
    for path in resolve_shards(source):
        try:
            stat = path.stat()
        except OSError as exc:
            raise CDRValidationError(f"{path}: unreadable shard: {exc}") from exc
        entries.append(
            ShardEntry(
                path=str(path), size=stat.st_size, mtime_ns=stat.st_mtime_ns
            )
        )
    return entries


def diff_manifest(
    known: Collection[ShardKey], scan: Sequence[ShardEntry]
) -> ManifestDiff:
    """Split a scan into new work, retired state and reusable partials."""
    seen = {entry.key for entry in scan}
    added = tuple(
        (index, entry)
        for index, entry in enumerate(scan)
        if entry.key not in known
    )
    removed = tuple(sorted(key for key in known if key not in seen))
    unchanged = tuple(entry for entry in scan if entry.key in known)
    return ManifestDiff(added=added, removed=removed, unchanged=unchanged)


def trace_fingerprint(scan: Sequence[ShardEntry]) -> str:
    """Digest of the ordered shard identities; rotates on any change."""
    stamped = ";".join(
        f"{entry.path}:{entry.size}:{entry.mtime_ns}" for entry in scan
    )
    return fingerprint(stamped)
