"""Asyncio HTTP front end for the analysis service.

A deliberately small HTTP/1.1 server on ``asyncio`` streams — the
container ships no third-party web framework, and the service's surface
(seven GET routes, two POSTs, JSON in and out) does not need one.  The
event loop owns the sockets; every request body that touches analysis
state runs on a bounded thread pool via ``run_in_executor``, so a cold
query folding gigabytes of partials never stalls health checks or cache
hits on other connections.  CPU-heavy sweeps fan out further from those
executor threads into ``core.mapreduce`` worker *processes* — threads for
concurrency at the socket layer, processes for parallelism in the sweep.

Endpoints (all responses are canonical JSON bytes):

- ``GET /healthz`` — liveness, no state access.
- ``GET /stats`` — cache counters, manifest size, fingerprints.
- ``GET /analyses`` — the query kinds this daemon serves.
- ``GET /query/<kind>?...`` — one Section 4 analysis (cached).
- ``GET /timeline/<car>`` — one car's session log (cached).
- ``POST /ingest`` — rescan the trace, fold new shards, report the diff.
- ``POST /invalidate`` — drop every cached response explicitly.

Determinism argument for the thread pool (RL012 allowlist): the executor
threads only *schedule* requests — every response body is canonical JSON
derived from :class:`~repro.service.state.ServiceState`'s index-ordered
fold under its lock, so response bytes are identical no matter how
requests interleave.  ``tests/service/test_service.py`` asserts
byte-identical bodies across 16 concurrent clients, and the map phase
itself runs in ``core.mapreduce``'s sanctioned worker pool, never here.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, TypeVar
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.service.routes import ANALYSIS_ROUTES, QueryError
from repro.service.state import ServiceState, canonical_json

if TYPE_CHECKING:
    from collections.abc import Callable, Mapping

_T = TypeVar("_T")

#: Reason phrases for the statuses the service emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}

#: Cap on concurrent state-touching requests; beyond this they queue.
DEFAULT_EXECUTOR_THREADS = 8

#: What a request handler may raise without killing its connection: the
#: error families analysis code and the shard I/O can produce.  QueryError,
#: KeyError and ValueError are mapped to typed statuses before this net.
_REQUEST_ERRORS = (
    ArithmeticError,
    AttributeError,
    LookupError,
    OSError,
    RuntimeError,
    TypeError,
    ValueError,
)


@dataclass(frozen=True)
class _Response:
    """One HTTP response body with its status."""

    status: int
    body: bytes


def _json_response(status: int, payload: Mapping[str, object]) -> _Response:
    return _Response(status=status, body=canonical_json(payload))


def _error(status: int, message: str) -> _Response:
    return _json_response(status, {"error": message, "status": status})


class ServiceApp:
    """Routes HTTP requests onto one :class:`ServiceState`."""

    def __init__(
        self,
        state: ServiceState,
        executor_threads: int = DEFAULT_EXECUTOR_THREADS,
    ) -> None:
        if executor_threads < 1:
            raise ValueError(
                f"executor_threads must be >= 1, got {executor_threads}"
            )
        self.state = state
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-service"
        )

    async def start_server(self, host: str, port: int) -> asyncio.Server:
        """Bind and return the listening server (port 0 = ephemeral)."""
        return await asyncio.start_server(self._handle_connection, host, port)

    def shutdown(self) -> None:
        """Stop the executor; in-flight requests finish first."""
        self._executor.shutdown(wait=True)

    # -- request handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line.strip() == b"":
                    break
                try:
                    method, target, _version = (
                        request_line.decode("latin-1").strip().split(" ", 2)
                    )
                except ValueError:
                    await self._write(writer, _error(400, "malformed request line"))
                    break
                headers = await self._read_headers(reader)
                if headers is None:
                    await self._write(writer, _error(400, "malformed headers"))
                    break
                body_len = int(headers.get("content-length", "0") or "0")
                if body_len:
                    await reader.readexactly(body_len)
                response = await self._dispatch(method.upper(), target)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write(writer, response, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_headers(
        self, reader: asyncio.StreamReader
    ) -> dict[str, str] | None:
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                return headers
            if not line:
                return None
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()

    async def _write(
        self, writer: asyncio.StreamWriter, response: _Response, keep_alive: bool = True
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {response.status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(response.body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + response.body)
        await writer.drain()

    async def _dispatch(self, method: str, target: str) -> _Response:
        split = urlsplit(target)
        path = unquote(split.path)
        params = dict(parse_qsl(split.query))
        try:
            if method == "GET":
                return await self._dispatch_get(path, params)
            if method == "POST":
                return await self._dispatch_post(path)
            return _error(405, f"method {method} not supported")
        except QueryError as exc:
            return _error(exc.status, exc.message)
        except KeyError as exc:
            return _error(404, f"not found: {exc.args[0] if exc.args else path}")
        except ValueError as exc:
            return _error(409, str(exc))
        except _REQUEST_ERRORS:
            return _error(500, "internal error")

    async def _dispatch_get(self, path: str, params: dict[str, str]) -> _Response:
        if path == "/healthz":
            return _json_response(200, {"status": "ok"})
        if path == "/stats":
            return _json_response(200, self._stats_payload())
        if path == "/analyses":
            return _json_response(
                200,
                {
                    "analyses": {
                        kind: route.description
                        for kind, route in ANALYSIS_ROUTES.items()
                    }
                },
            )
        if path.startswith("/query/"):
            kind = path[len("/query/") :]
            body = await self._run(partial(self.state.query, kind, params))
            return _Response(status=200, body=body)
        if path.startswith("/timeline/"):
            car = path[len("/timeline/") :]
            body = await self._run(
                partial(self.state.query, "timeline", {"car": car})
            )
            return _Response(status=200, body=body)
        raise KeyError(path)

    async def _dispatch_post(self, path: str) -> _Response:
        if path == "/ingest":
            summary = await self._run(self.state.refresh)
            return _json_response(
                200,
                {
                    "changed": summary.changed,
                    "n_added": summary.n_added,
                    "n_ghosts": summary.n_ghosts,
                    "n_records": summary.n_records,
                    "n_removed": summary.n_removed,
                    "n_shards": summary.n_shards,
                    "trace_fingerprint": summary.trace_fingerprint,
                },
            )
        if path == "/invalidate":
            dropped = await self._run(self.state.cache.clear)
            return _json_response(200, {"dropped": dropped})
        raise KeyError(path)

    def _stats_payload(self) -> dict[str, object]:
        stats = self.state.cache_stats()
        return {
            "cache": {
                "current_bytes": stats.current_bytes,
                "entries": stats.entries,
                "evictions": stats.evictions,
                "hits": stats.hits,
                "max_bytes": stats.max_bytes,
                "misses": stats.misses,
            },
            "config_fingerprint": self.state.config_fingerprint,
            "n_records": self.state.n_records,
            "n_shards": self.state.n_shards,
            "scenario": self.state.config.scenario,
            "trace_fingerprint": self.state.trace_fingerprint,
        }

    async def _run(self, fn: Callable[[], _T]) -> _T:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn)


async def _serve_until(
    app: ServiceApp, host: str, port: int, stop: asyncio.Event | None
) -> int:
    """Serve until ``stop`` is set (or forever), returning the bound port."""
    server = await app.start_server(host, port)
    sockets = server.sockets
    bound = int(sockets[0].getsockname()[1]) if sockets else port
    try:
        if stop is None:
            async with server:
                await server.serve_forever()
        else:
            async with server:
                await stop.wait()
    finally:
        app.shutdown()
    return bound


def serve_forever(state: ServiceState, host: str, port: int) -> None:
    """Blocking entry point used by ``repro-cars serve``."""
    asyncio.run(_serve_until(ServiceApp(state), host, port, stop=None))


class ServiceThread:
    """A live daemon on a background thread, for tests and benchmarks.

    Starts the event loop on its own thread, binds (by default) an
    ephemeral port, and exposes the bound address once ``start`` returns.
    Use as a context manager so the loop, executor and sockets are torn
    down deterministically.
    """

    def __init__(
        self, state: ServiceState, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.state = state
        self.host = host
        self.port = port
        self._app = ServiceApp(state)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        """Start the loop and block until the server is accepting."""
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error

    def stop(self) -> None:
        """Stop the server and join the loop thread."""
        loop, stop, thread = self._loop, self._stop, self._thread
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if thread is not None:
            thread.join()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            # Stash for start() to re-raise on the caller's thread, then
            # re-raise here too so the failure is never silent.
            self._error = exc
            raise
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await self._app.start_server(self.host, self.port)
        sockets = server.sockets
        if sockets:
            self.port = int(sockets[0].getsockname()[1])
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self._app.shutdown()
