"""Long-lived analysis state behind the query daemon.

One :class:`ServiceState` owns everything a batch CLI run rebuilds from
scratch on every invocation — the scenario's topology, load model and
:class:`~repro.core.busy.BusySchedule`, the memory-mapped shard batches,
and, crucially, one pickled :class:`~repro.core.fused.FusedPartial` per
shard.  Queries are answered from a finalized fused report that is only
recomputed when the shard manifest changes, and even then by *folding*:
a refresh sweeps only shards the service has never seen (dispatched
through :func:`repro.core.mapreduce.map_shards_fused` worker processes)
and re-folds the cached per-shard partials in shard-index order.  Because
every partial is a pure function of its shard's bytes and the fold order
is canonical, the refreshed report is bit-identical to a cold full run no
matter how many ingests it took to get there — the parity suite in
``tests/service/`` asserts exactly that.

Scenario context (topology + load model + schedule) is shared process-wide
per ``(scenario, days)`` key: synthesizing per-cell load series dominates
cold-start time, and the masks are a pure function of the scenario, so two
states over the same scenario must not pay for it twice.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.algorithms.timebins import StudyClock
from repro.cdr.store import DEFAULT_CHUNK_ROWS, read_batch_cdrz
from repro.core.busy import BusySchedule
from repro.core.fused import FusedPartial, FusedReport, finalize_fused, fold_fused_partials
from repro.core.mapreduce import FusedMapSpec, map_shards_fused
from repro.core.preprocess import PreprocessConfig
from repro.network.load import CellLoadModel
from repro.network.topology import NetworkTopology, build_topology
from repro.service.cache import CacheStats, ResultCache, fingerprint, result_key
from repro.service.ingest import (
    ShardEntry,
    ShardKey,
    diff_manifest,
    scan_shards,
    trace_fingerprint,
)
from repro.simulate.scenarios import scenario

if TYPE_CHECKING:
    from pathlib import Path

    from repro.cdr.columnar import ColumnarCDRBatch


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the daemon needs to serve one trace.

    ``workers`` follows the CLI convention shared by ``analyze`` and
    ``stream``: results are identical at any count, ``1`` sweeps shards in
    process, ``0`` uses all CPUs.  Only fields that change *results* enter
    the config fingerprint — worker count, chunk size and cache budget
    affect speed, never bytes.
    """

    trace: str
    scenario: str = "default"
    days: int = 28
    workers: int = 1
    chunk_rows: int = DEFAULT_CHUNK_ROWS
    min_records: int = 2
    cache_bytes: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError(f"days must be >= 1, got {self.days}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")

    def result_fingerprint(self) -> str:
        """Digest over the fields that determine response bytes."""
        payload = json.dumps(
            {
                "days": self.days,
                "min_records": self.min_records,
                "scenario": self.scenario,
            },
            sort_keys=True,
        )
        return fingerprint(payload)


@dataclass(frozen=True)
class IngestSummary:
    """What one refresh did, reported by ``POST /ingest``."""

    changed: bool
    n_shards: int
    n_added: int
    n_removed: int
    n_records: int
    n_ghosts: int
    trace_fingerprint: str


@dataclass(frozen=True)
class ScenarioContext:
    """Immutable per-(scenario, days) analysis inputs, shared across states."""

    clock: StudyClock
    topology: NetworkTopology
    load_model: CellLoadModel
    schedule: BusySchedule


#: Process-wide scenario context registry; see :func:`scenario_context`.
_CONTEXTS: dict[tuple[str, int], ScenarioContext] = {}
_CONTEXTS_LOCK = threading.Lock()


def scenario_context(scenario_name: str, days: int) -> ScenarioContext:
    """The shared context for a ``(scenario, days)`` key, built once.

    The :class:`BusySchedule` inside is the expensive part — its lazy
    per-cell masks and padded grid survive for the process lifetime, so
    every service query (and every state) over the same key reuses one
    schedule instance instead of re-deriving masks per request.
    """
    key = (scenario_name, days)
    with _CONTEXTS_LOCK:
        context = _CONTEXTS.get(key)
        if context is None:
            config = scenario(scenario_name, n_cars=1, n_days=days)
            clock = StudyClock(n_days=days)
            topology = build_topology(config.topology)
            load_model = CellLoadModel(topology, clock, seed=config.load_seed)
            context = ScenarioContext(
                clock=clock,
                topology=topology,
                load_model=load_model,
                schedule=BusySchedule.from_load_model(load_model),
            )
            _CONTEXTS[key] = context
        return context


def canonical_json(payload: Mapping[str, object]) -> bytes:
    """The one JSON encoding every response uses: sorted keys, no spaces.

    Identical payloads therefore serialize to identical bytes — the
    property the concurrency tests pin down — and ``repr``-exact float
    encoding keeps responses bit-faithful to the underlying doubles.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def canonical_params(params: Mapping[str, str]) -> str:
    """Sorted ``k=v`` rendering of query parameters, for cache keys."""
    return "&".join(f"{k}={params[k]}" for k in sorted(params))


class ServiceState:
    """The daemon's mutable core: partial cache, report, result cache.

    Thread model: queries run on executor threads while the event loop
    handles sockets.  One re-entrant lock serializes every mutation
    (refresh, fold, report access) and the compute side of cache misses;
    cache hits never take it.  Concurrent identical queries are therefore
    single-flight — the first computes and caches, the rest hit the cache
    — and all of them return byte-identical JSON either way, because the
    encoder is canonical.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.context = scenario_context(config.scenario, config.days)
        self.cache = ResultCache(config.cache_bytes)
        self._workers = config.workers if config.workers > 0 else (os.cpu_count() or 1)
        self._config_fp = config.result_fingerprint()
        self._partials: dict[ShardKey, bytes | None] = {}
        self._scan: list[ShardEntry] = []
        self._trace_fp = ""
        self._report: FusedReport | None = None
        self._n_records = 0
        self._n_ghosts = 0
        self._batches: dict[ShardKey, ColumnarCDRBatch] = {}
        self._lock = threading.RLock()

    # -- ingest ------------------------------------------------------------

    def refresh(self) -> IngestSummary:
        """Rescan the trace, sweep only unseen shards, re-fold, re-finalize.

        A no-op scan (nothing added or removed) returns immediately and
        keeps every cached response valid.  Otherwise the result cache is
        cleared wholesale: the trace fingerprint rotates, so old entries
        could never be served again — clearing just returns their bytes.
        """
        with self._lock:
            scan = scan_shards(self.config.trace)
            diff = diff_manifest(self._partials.keys(), scan)
            if not diff.changed and self._scan:
                return self._summary(changed=False, n_added=0, n_removed=0)
            if diff.added:
                spec = FusedMapSpec(
                    shards=tuple(self._paths(scan)),
                    clock=self.context.clock,
                    config=PreprocessConfig(),
                    schedule=self.context.schedule,
                    cells=self.context.topology.cells,
                    min_records=self.config.min_records,
                    chunk_rows=self.config.chunk_rows,
                )
                mapped = map_shards_fused(
                    spec,
                    indices=[index for index, _ in diff.added],
                    workers=self._workers,
                )
                for index, entry in diff.added:
                    partial = mapped[index]
                    self._partials[entry.key] = (
                        None
                        if partial is None
                        else pickle.dumps(partial, protocol=pickle.HIGHEST_PROTOCOL)
                    )
            for key in diff.removed:
                del self._partials[key]
                self._batches.pop(key, None)
            self._fold(scan)
            self._scan = scan
            self._trace_fp = trace_fingerprint(scan)
            self.cache.clear()
            return self._summary(
                changed=True,
                n_added=len(diff.added),
                n_removed=len(diff.removed),
            )

    def _paths(self, scan: list[ShardEntry]) -> list[Path]:
        from pathlib import Path

        return [Path(entry.path) for entry in scan]

    def _fold(self, scan: list[ShardEntry]) -> None:
        """Fold cached partials in shard-index order and finalize."""
        unpickled: list[FusedPartial] = []
        for entry in scan:
            blob = self._partials[entry.key]
            if blob is not None:
                unpickled.append(pickle.loads(blob))
        if not unpickled:
            self._report = None
            self._n_records = 0
            self._n_ghosts = 0
            return
        merged = fold_fused_partials(unpickled)
        self._report = finalize_fused(merged, self.context.clock)
        self._n_records = merged.n_records
        self._n_ghosts = merged.n_ghosts

    def _summary(self, changed: bool, n_added: int, n_removed: int) -> IngestSummary:
        return IngestSummary(
            changed=changed,
            n_shards=len(self._scan),
            n_added=n_added,
            n_removed=n_removed,
            n_records=self._n_records,
            n_ghosts=self._n_ghosts,
            trace_fingerprint=self._trace_fp,
        )

    # -- report access -----------------------------------------------------

    def report(self) -> FusedReport:
        """The current fused report, refreshing on first use.

        Raises ``ValueError`` when the trace holds no rows at all — every
        Section 4 statistic would be undefined, and the routes layer turns
        this into an explicit HTTP error instead of a NaN-filled payload.
        """
        with self._lock:
            if self._report is None and not self._scan:
                self.refresh()
            if self._report is None:
                raise ValueError("trace has no rows; nothing to analyze")
            return self._report

    @property
    def n_records(self) -> int:
        """Rows kept by the current fold (ghosts excluded)."""
        return self._n_records

    @property
    def n_ghosts(self) -> int:
        """Ghost rows dropped by the current fold."""
        return self._n_ghosts

    @property
    def n_shards(self) -> int:
        """Shards in the current manifest."""
        return len(self._scan)

    # -- queries -----------------------------------------------------------

    def query(self, kind: str, params: Mapping[str, str]) -> bytes:
        """One analysis response as canonical JSON bytes, cached by key.

        ``KeyError`` propagates for an unknown ``kind`` or car id (the app
        maps it to 404); ``ValueError`` for an empty trace (mapped to 409).
        """
        from repro.service.routes import ANALYSIS_ROUTES

        route = ANALYSIS_ROUTES[kind]
        with self._lock:
            if not self._scan:
                self.refresh()
            key = result_key(
                kind, canonical_params(params), self._trace_fp, self._config_fp
            )
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        with self._lock:
            cached = self.cache.peek(key)
            if cached is not None:
                return cached
            payload = route.build(self, params)
            data = canonical_json(payload)
            self.cache.put(key, data)
            return data

    def shard_batch(self, entry: ShardEntry) -> ColumnarCDRBatch:
        """The shard's columnar batch, memory-mapped once per lifetime."""
        with self._lock:
            batch = self._batches.get(entry.key)
            if batch is None:
                batch = read_batch_cdrz(entry.path)
                self._batches[entry.key] = batch
            return batch

    def manifest(self) -> list[ShardEntry]:
        """The current scan, in fold order."""
        with self._lock:
            return list(self._scan)

    def cache_stats(self) -> CacheStats:
        """Result-cache counters for ``/stats``."""
        return self.cache.stats()

    @property
    def trace_fingerprint(self) -> str:
        """Fingerprint of the manifest the current results describe."""
        return self._trace_fp

    @property
    def config_fingerprint(self) -> str:
        """Fingerprint of the result-determining configuration."""
        return self._config_fp
