"""Long-running analysis service over `.cdrz` traces.

The batch CLI answers one question per process: load shards, sweep, print,
exit.  This package keeps the expensive state alive instead — memmapped
shards, per-shard fused partials, a finalized report, and an LRU byte-
budgeted cache of serialized responses — behind a small stdlib-asyncio
HTTP daemon (``repro-cars serve``).  Warm queries are a cache lookup;
ingesting a new day of shards folds only the new partials and is
bit-identical to a cold full recompute at any ingest order.

Modules: :mod:`cache` (keyed LRU result cache), :mod:`ingest` (scan /
diff / fingerprints), :mod:`state` (the daemon's core), :mod:`routes`
(report -> JSON projections), :mod:`app` (HTTP server), :mod:`client`
(blocking JSON client).
"""

from repro.service.app import ServiceApp, ServiceThread, serve_forever
from repro.service.cache import CacheStats, ResultCache, fingerprint, result_key
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.ingest import (
    ManifestDiff,
    ShardEntry,
    ShardKey,
    diff_manifest,
    scan_shards,
    trace_fingerprint,
)
from repro.service.routes import ANALYSIS_ROUTES, QueryError, Route
from repro.service.state import (
    IngestSummary,
    ScenarioContext,
    ServiceConfig,
    ServiceState,
    canonical_json,
    scenario_context,
)

__all__ = [
    "ANALYSIS_ROUTES",
    "CacheStats",
    "IngestSummary",
    "ManifestDiff",
    "QueryError",
    "ResultCache",
    "Route",
    "ScenarioContext",
    "ServiceApp",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceState",
    "ServiceThread",
    "ShardEntry",
    "ShardKey",
    "canonical_json",
    "diff_manifest",
    "fingerprint",
    "result_key",
    "scan_shards",
    "scenario_context",
    "serve_forever",
    "trace_fingerprint",
]
