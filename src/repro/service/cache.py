"""Keyed result cache with an LRU byte budget.

The service caches *serialized responses*: the value under a key is the
exact JSON byte string a query returns, so a cache hit is a dictionary
lookup plus a socket write — no analysis object is touched, let alone
recomputed.  Keys are built by :func:`result_key` from three fingerprints
(analysis kind + parameters, trace manifest, service configuration), which
gives invalidation-by-construction: an ingest that changes the manifest or
a config change rotates the fingerprint, so stale entries can never be
*served* — the explicit invalidation hooks exist to release their bytes,
not to protect correctness.

Evictions are least-recently-used over a byte budget (response sizes vary
by orders of magnitude between a summary and a per-car timeline, so entry
counts would be the wrong unit).  A single value larger than the whole
budget is returned to the caller but never stored.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass


def fingerprint(payload: str) -> str:
    """Short stable digest of a canonical string (first 16 hex chars)."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def result_key(kind: str, params: str, trace_fp: str, config_fp: str) -> str:
    """Cache key of one query result.

    ``kind`` and ``params`` identify the question, ``trace_fp`` the exact
    shard manifest the answer was computed over, and ``config_fp`` the
    service configuration (scenario, study length, thresholds).  Any
    ingest or reconfiguration changes a fingerprint and thereby the key.
    """
    return f"{kind}?{params}|trace={trace_fp}|config={config_fp}"


@dataclass(frozen=True)
class CacheStats:
    """Counters the ``/stats`` endpoint reports."""

    hits: int
    misses: int
    evictions: int
    entries: int
    current_bytes: int
    max_bytes: int


class ResultCache:
    """Thread-safe LRU byte-budgeted mapping of key -> response bytes.

    Readers and writers may live on different executor threads while the
    event loop inspects stats, so every operation takes the one lock; all
    operations are O(1) except an eviction sweep, which is amortized O(1)
    per insert.
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    def get(self, key: str) -> bytes | None:
        """The cached bytes under ``key``, refreshing its recency."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: str) -> bytes | None:
        """Like :meth:`get` but without touching the hit/miss counters.

        Used for the double-checked lookup inside the compute lock, so one
        user-visible query counts as exactly one hit or miss.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: str, value: bytes) -> None:
        """Store ``value``, evicting least-recently-used entries to fit.

        A value over the whole budget is not stored at all: admitting it
        would evict everything for an entry that the next put evicts in
        turn, churning the cache to hold exactly one oversized response.
        """
        if len(value) > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._current_bytes -= len(old)
            self._entries[key] = value
            self._current_bytes += len(value)
            while self._current_bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._current_bytes -= len(evicted)
                self._evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            value = self._entries.pop(key, None)
            if value is None:
                return False
            self._current_bytes -= len(value)
            return True

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._current_bytes = 0
            return dropped

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                current_bytes=self._current_bytes,
                max_bytes=self.max_bytes,
            )
