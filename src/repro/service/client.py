"""Blocking HTTP client for the analysis service.

Built on ``http.client`` so the CLI, tests and benchmarks can talk to the
daemon without third-party dependencies.  One client holds one persistent
keep-alive connection and is **not** thread-safe — concurrent callers
(the throughput benchmark, the concurrency tests) each open their own
client, which also matches how qps under concurrent load should be
measured: independent connections, not a shared pipeline.
"""

from __future__ import annotations

import http.client
import json
from collections.abc import Mapping
from types import TracebackType
from urllib.parse import quote, urlencode


class ServiceClientError(Exception):
    """A non-200 response, with the server's status and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Minimal JSON client bound to one ``host:port``."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def close(self) -> None:
        """Close the persistent connection (reopened on next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- transport ---------------------------------------------------------

    def request_bytes(self, method: str, path: str) -> tuple[int, bytes]:
        """One request; returns ``(status, body)`` without interpreting it."""
        conn = self._conn
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn = conn
        try:
            conn.request(method, path)
            response = conn.getresponse()
            return response.status, response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # Stale keep-alive socket: reconnect once and retry.
            self.close()
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn = conn
            conn.request(method, path)
            response = conn.getresponse()
            return response.status, response.read()

    def _request_ok(self, method: str, path: str) -> bytes:
        status, body = self.request_bytes(method, path)
        if status != 200:
            try:
                parsed = json.loads(body)
                message = str(parsed.get("error", body.decode("utf-8", "replace")))
            except (ValueError, AttributeError):
                message = body.decode("utf-8", "replace")
            raise ServiceClientError(status, message)
        return body

    def _get_json(self, path: str) -> dict[str, object]:
        payload = json.loads(self._request_ok("GET", path))
        if not isinstance(payload, dict):
            raise ServiceClientError(200, f"expected a JSON object from {path}")
        return payload

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict[str, object]:
        """Liveness probe."""
        return self._get_json("/healthz")

    def stats(self) -> dict[str, object]:
        """Cache counters and manifest fingerprints."""
        return self._get_json("/stats")

    def analyses(self) -> dict[str, object]:
        """The query kinds this daemon serves."""
        return self._get_json("/analyses")

    def query_bytes(self, kind: str, params: Mapping[str, str] | None = None) -> bytes:
        """One analysis response as raw bytes (for byte-parity checks)."""
        path = f"/query/{quote(kind)}"
        if params:
            path += "?" + urlencode(sorted(params.items()))
        return self._request_ok("GET", path)

    def query(
        self, kind: str, params: Mapping[str, str] | None = None
    ) -> dict[str, object]:
        """One analysis response, parsed."""
        payload = json.loads(self.query_bytes(kind, params))
        if not isinstance(payload, dict):
            raise ServiceClientError(200, f"expected a JSON object from {kind}")
        return payload

    def timeline(self, car: str) -> dict[str, object]:
        """One car's session log."""
        return self._get_json(f"/timeline/{quote(car)}")

    def ingest(self) -> dict[str, object]:
        """Ask the daemon to rescan its trace and fold new shards."""
        payload = json.loads(self._request_ok("POST", "/ingest"))
        if not isinstance(payload, dict):
            raise ServiceClientError(200, "expected a JSON object from /ingest")
        return payload

    def invalidate(self) -> dict[str, object]:
        """Drop every cached response."""
        payload = json.loads(self._request_ok("POST", "/invalidate"))
        if not isinstance(payload, dict):
            raise ServiceClientError(200, "expected a JSON object from /invalidate")
        return payload
