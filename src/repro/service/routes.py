"""Section 4 query routes: fused-report fields -> JSON-safe payloads.

Each route turns one slice of the service's :class:`FusedReport` (or, for
timelines, the memmapped shard batches) into a plain ``dict`` of Python
scalars, lists and strings.  The dict is then encoded by
``state.canonical_json`` — sorted keys, no whitespace — so a payload built
twice from the same report serializes to the same bytes.  Routes therefore
must only emit deterministic structures: numpy scalars are converted with
``float()``/``int()``, arrays with ``tolist()``, and every mapping is
keyed by strings whose order the encoder normalizes.

Routes never compute analyses — the fused engine already did during
ingest.  A route is a cheap projection, which is what makes warm queries a
cache lookup and cold queries a serialization, never a data sweep (the
exceptions are ``timeline``, which scans the memmapped columns for one
car, and ``twin``, which sweeps the shards once for the calibration
statistics the fused report does not carry — both land in the same keyed
cache as every other route, so the sweep happens once per trace version).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cdr.store import DEFAULT_CHUNK_ROWS
from repro.core.fused import ChunkIntermediates
from repro.core.handover import HandoverType
from repro.core.preprocess import PreprocessConfig
from repro.core.twinstats import TwinStatsKernel, TwinStatsPartial
from repro.twin.summary import summary_from_parts

if TYPE_CHECKING:
    from repro.service.state import ServiceState

#: A route body: project the state's report into a JSON-safe payload.
RouteBuilder = Callable[["ServiceState", Mapping[str, str]], dict[str, object]]


class QueryError(Exception):
    """A request-level failure with an HTTP status the app can forward."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _float_param(
    params: Mapping[str, str], name: str, default: float, lo: float, hi: float
) -> float:
    """One validated float query parameter in ``[lo, hi]``."""
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise QueryError(400, f"parameter {name!r} is not a number: {raw!r}") from None
    if not lo <= value <= hi:
        raise QueryError(400, f"parameter {name!r} must be in [{lo}, {hi}], got {value}")
    return value


def _trend(slope: float, intercept: float, r_squared: float) -> dict[str, object]:
    return {"intercept": intercept, "r_squared": r_squared, "slope": slope}


def build_summary(state: ServiceState, params: Mapping[str, str]) -> dict[str, object]:
    """Trace-level totals: the ``analyze`` command's headline numbers."""
    report = state.report()
    return {
        "n_cars": int(report.presence.n_cars_total),
        "n_cells": int(report.presence.n_cells_total),
        "n_days": int(state.context.clock.n_days),
        "n_ghosts": int(report.n_ghosts),
        "n_records": int(state.n_records),
        "n_shards": int(state.n_shards),
    }


def build_presence(state: ServiceState, params: Mapping[str, str]) -> dict[str, object]:
    """Figure 2: daily car/cell presence series with OLS trends."""
    presence = state.report().presence
    car_trend = presence.car_trend
    cell_trend = presence.cell_trend
    return {
        "car_fraction": presence.car_fraction.tolist(),
        "car_trend": _trend(car_trend.slope, car_trend.intercept, car_trend.r_squared),
        "cell_fraction": presence.cell_fraction.tolist(),
        "cell_trend": _trend(
            cell_trend.slope, cell_trend.intercept, cell_trend.r_squared
        ),
        "n_cars_total": int(presence.n_cars_total),
        "n_cells_total": int(presence.n_cells_total),
    }


def build_connect_time(
    state: ServiceState, params: Mapping[str, str]
) -> dict[str, object]:
    """Figure 3: connected-time shares; ``q`` selects the tail percentile."""
    q = _float_param(params, "q", 99.5, 0.0, 100.0)
    result = state.report().connect_time
    tail_full, tail_trunc = result.tail(q) if result.full_share.size else (0.0, 0.0)
    hours_full, hours_trunc = result.hours_per_day(state.context.clock)
    return {
        "hours_per_day_full": hours_full,
        "hours_per_day_truncated": hours_trunc,
        "mean_full": result.mean_full,
        "mean_truncated": result.mean_truncated,
        "n_cars": len(result.car_ids),
        "tail_percentile": q,
        "tail_share_full": tail_full,
        "tail_share_truncated": tail_trunc,
    }


def build_carriers(state: ServiceState, params: Mapping[str, str]) -> dict[str, object]:
    """Table 3: per-carrier reach and time share."""
    usage = state.report().carriers
    return {
        "cars_fraction": {c: float(v) for c, v in usage.cars_fraction.items()},
        "n_cars": int(usage.n_cars),
        "time_fraction": {c: float(v) for c, v in usage.time_fraction.items()},
        "top_by_time": usage.top_carriers_by_time(),
        "total_time_s": float(usage.total_time_s),
    }


def build_busy(state: ServiceState, params: Mapping[str, str]) -> dict[str, object]:
    """Figure 7: busy-cell exposure; ``floor`` zooms the tail panel."""
    floor = _float_param(params, "floor", 0.5, 0.0, 0.999)
    exposure = state.report().exposure
    if exposure is None:
        raise QueryError(409, "busy exposure was not computed for this trace")
    return {
        "fraction_above_floor": exposure.fraction_above(floor),
        "fraction_all_busy": exposure.fraction_all_busy(),
        "floor": floor,
        "n_cars": len(exposure.car_ids),
        "share_distribution": exposure.share_distribution().tolist(),
        "share_distribution_above": exposure.share_distribution_above(floor).tolist(),
    }


def build_segmentation(
    state: ServiceState, params: Mapping[str, str]
) -> dict[str, object]:
    """Table 2: rare/common x busy/non-busy car segments."""
    segmentation = state.report().segmentation
    if segmentation is None:
        raise QueryError(409, "segmentation was not computed for this trace")
    return {
        "n_cars": int(segmentation.n_cars),
        "rows": [
            {
                "both": float(row.both),
                "busy": float(row.busy),
                "label": row.label,
                "non_busy": float(row.non_busy),
                "total": float(row.total),
            }
            for row in segmentation.rows
        ],
    }


def build_handovers(
    state: ServiceState, params: Mapping[str, str]
) -> dict[str, object]:
    """Figure 8 / Table 4: handovers per session and the type breakdown."""
    q = _float_param(params, "q", 90.0, 0.0, 100.0)
    stats = state.report().handovers
    if stats is None:
        raise QueryError(409, "handovers were not computed for this trace")
    has_sessions = stats.n_sessions > 0
    return {
        "median": stats.median if has_sessions else None,
        "n_sessions": stats.n_sessions,
        "percentile": stats.percentile(q) if has_sessions else None,
        "percentile_q": q,
        "total_handovers": stats.total_handovers,
        "type_fractions": {
            kind.value: stats.type_fraction(kind) for kind in HandoverType
        },
    }


def build_timeline(state: ServiceState, params: Mapping[str, str]) -> dict[str, object]:
    """One car's full session log, scanned from the memmapped shards.

    Rows are gathered shard by shard in fold order and then sorted by the
    canonical record order (start, cell, carrier, technology, duration), so
    the same car yields the same timeline regardless of how its records are
    distributed across shards.
    """
    car = params.get("car")
    if not car:
        raise QueryError(400, "parameter 'car' is required")
    rows: list[tuple[float, int, str, str, float]] = []
    seen = False
    for entry in state.manifest():
        batch = state.shard_batch(entry)
        try:
            code = batch.car_ids.index(car)
        except ValueError:
            continue
        seen = True
        for i in (batch.car_code == code).nonzero()[0]:
            rows.append(
                (
                    float(batch.start[i]),
                    int(batch.cell_id[i]),
                    batch.carriers[batch.carrier_code[i]],
                    batch.technologies[batch.tech_code[i]],
                    float(batch.duration[i]),
                )
            )
    if not seen:
        raise KeyError(car)
    rows.sort()
    return {
        "car": car,
        "n_sessions": len(rows),
        "sessions": [
            {
                "carrier": carrier,
                "cell_id": cell,
                "duration_s": duration,
                "start_s": start,
                "technology": technology,
            }
            for start, cell, carrier, technology, duration in rows
        ],
        "total_duration_s": sum(row[4] for row in rows),
    }


def build_twin(state: ServiceState, params: Mapping[str, str]) -> dict[str, object]:
    """The served trace's calibration-target summary (``repro.twin``).

    Sweeps the memmapped shards once with a :class:`TwinStatsKernel` —
    one kernel per shard (shards carry their own vocabularies), partials
    folded in manifest order, so the payload is bit-identical to an
    offline :func:`repro.twin.summary.summarize_source` run over the same
    directory.  The client feeds this straight into
    ``TraceSummary.from_json_dict`` as a calibration target.
    """
    report = state.report()
    clock = state.context.clock
    truncate_s = PreprocessConfig().truncate_s
    merged: TwinStatsPartial | None = None
    for entry in state.manifest():
        batch = state.shard_batch(entry)
        kernel = TwinStatsKernel(batch.car_ids, clock)
        for lo in range(0, len(batch), DEFAULT_CHUNK_ROWS):
            chunk = batch.rows(lo, min(lo + DEFAULT_CHUNK_ROWS, len(batch)))
            kernel.consume(ChunkIntermediates(chunk, clock, truncate_s))
        partial = kernel.export_partial()
        if merged is None:
            merged = partial
        else:
            merged.absorb_partial(partial)
    if merged is None:
        raise QueryError(409, "trace has no rows")
    return summary_from_parts(report, merged, clock).to_json_dict()


@dataclass(frozen=True)
class Route:
    """One query kind the service answers."""

    kind: str
    description: str
    build: RouteBuilder


#: Every analysis the service serves, keyed by the ``/query/<kind>`` path.
ANALYSIS_ROUTES: dict[str, Route] = {
    route.kind: route
    for route in (
        Route("summary", "trace totals: records, cars, cells, shards", build_summary),
        Route("presence", "daily car/cell presence with trends (Fig. 2)", build_presence),
        Route(
            "connect_time",
            "per-car connected-time shares (Fig. 3)",
            build_connect_time,
        ),
        Route("carriers", "per-carrier reach and time share (Table 3)", build_carriers),
        Route("busy", "busy-cell exposure distribution (Fig. 7)", build_busy),
        Route(
            "segmentation",
            "rare/common x busy/non-busy segments (Table 2)",
            build_segmentation,
        ),
        Route(
            "handovers",
            "handovers per session and types (Fig. 8, Table 4)",
            build_handovers,
        ),
        Route("timeline", "one car's session log across all shards", build_timeline),
        Route(
            "twin",
            "calibration-target summary for trace twinning",
            build_twin,
        ),
    )
}
