"""Car segmentation (Section 4.3, Figure 6 and Table 2).

Two independent axes classify every car:

* *rare vs common*: how many distinct days the car appeared on the network
  over the study.  The paper reads thresholds off the Figure 6 histogram —
  a sharp drop below 10 days and a rising trend past 30 — and segments with
  both.
* *busy vs non-busy vs both*: a car typically connects in busy hours when
  65% or more of its connected time is in cells with U_PRB > 80% for those
  15-minute bins, in non-busy hours when 35% or less is, and is balanced
  ("Both") otherwise.

The cross product is Table 2, the basis for managed-FOTA policies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.timebins import DAY, StudyClock
from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.records import CDRBatch
from repro.core.busy import BusyExposure

#: Paper thresholds on the busy-time share.
BUSY_CAR_THRESHOLD = 0.65
NONBUSY_CAR_THRESHOLD = 0.35
#: The two rare/common day thresholds the paper derives from Figure 6.
RARE_THRESHOLDS = (10, 30)


class BusyClass(enum.Enum):
    """Typical network-hour class of a car."""

    BUSY = "Busy"
    NON_BUSY = "Non-Busy"
    BOTH = "Both"


def classify_busy(
    busy_share: float,
    busy_threshold: float = BUSY_CAR_THRESHOLD,
    nonbusy_threshold: float = NONBUSY_CAR_THRESHOLD,
) -> BusyClass:
    """Paper rule: >=65% busy time -> Busy, <=35% -> Non-Busy, else Both."""
    if not 0 <= nonbusy_threshold <= busy_threshold <= 1:
        raise ValueError(
            "need 0 <= nonbusy_threshold <= busy_threshold <= 1, got "
            f"{nonbusy_threshold}, {busy_threshold}"
        )
    if busy_share >= busy_threshold:
        return BusyClass.BUSY
    if busy_share <= nonbusy_threshold:
        return BusyClass.NON_BUSY
    return BusyClass.BOTH


def days_on_network(batch: CDRBatch, clock: StudyClock) -> dict[str, int]:
    """Distinct study days each car appeared on the network (Figure 6)."""
    days: dict[str, set[int]] = {}
    for rec in batch:
        day = clock.day_index(rec.start)
        if 0 <= day < clock.n_days:
            days.setdefault(rec.car_id, set()).add(day)
    return {car: len(s) for car, s in days.items()}


def days_on_network_columnar(
    col: ColumnarCDRBatch, clock: StudyClock
) -> dict[str, int]:
    """Vectorized :func:`days_on_network` over a columnar batch.

    Packs ``(car_code, day)`` into one integer key, deduplicates with
    ``np.unique`` and counts distinct days per car with ``return_counts`` —
    the integer-exact equivalent of the reference's per-record set adds.
    """
    day = np.floor_divide(col.start, DAY).astype(np.int64)
    valid = (day >= 0) & (day < clock.n_days)
    n_days = np.int64(clock.n_days)
    pairs = np.unique(col.car_code[valid].astype(np.int64) * n_days + day[valid])
    codes, counts = np.unique(pairs // n_days, return_counts=True)
    return {
        col.car_ids[int(c)]: int(n)
        for c, n in zip(codes.tolist(), counts.tolist())
    }


def days_histogram(
    days: dict[str, int], n_days: int
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Histogram of days-on-network: ``(day values 1..n_days, car counts)``."""
    values = np.arange(1, n_days + 1, dtype=np.int64)
    counts = np.zeros(n_days, dtype=np.int64)
    for d in days.values():
        if 1 <= d <= n_days:
            counts[d - 1] += 1
    return values, counts


@dataclass(frozen=True)
class SegmentationRow:
    """One row of Table 2: percentages of the car population."""

    label: str
    busy: float
    non_busy: float
    both: float

    @property
    def total(self) -> float:
        """Row total — share of all cars in this rare/common segment."""
        return self.busy + self.non_busy + self.both


@dataclass(frozen=True)
class CarSegmentation:
    """Full Table 2: one rare+common row pair per day threshold."""

    rows: list[SegmentationRow]
    n_cars: int

    def row(self, label: str) -> SegmentationRow:
        """Row by its label, e.g. ``"Rare (<= 10 days)"``."""
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"no segmentation row labelled {label!r}")


def segment_cars(
    days: dict[str, int],
    exposure: BusyExposure,
    rare_thresholds: tuple[int, ...] = RARE_THRESHOLDS,
    busy_threshold: float = BUSY_CAR_THRESHOLD,
    nonbusy_threshold: float = NONBUSY_CAR_THRESHOLD,
) -> CarSegmentation:
    """Build Table 2 from days-on-network and busy exposure.

    Cars present in either input are segmented; a car missing from ``days``
    (no in-window records) counts as 0 days and hence rare.
    """
    share = dict(zip(exposure.car_ids, exposure.busy_share))
    all_cars = sorted(set(days) | set(share))
    if not all_cars:
        raise ValueError("cannot segment an empty car population")
    n = len(all_cars)

    classes = {
        car: classify_busy(share.get(car, 0.0), busy_threshold, nonbusy_threshold)
        for car in all_cars
    }

    rows: list[SegmentationRow] = []
    for threshold in rare_thresholds:
        rare = {car for car in all_cars if days.get(car, 0) <= threshold}
        for label, members in (
            (f"Rare (<= {threshold} days)", rare),
            (f"Common ({threshold}+ days)", set(all_cars) - rare),
        ):
            counts = {cls: 0 for cls in BusyClass}
            for car in members:
                counts[classes[car]] += 1
            rows.append(
                SegmentationRow(
                    label=label,
                    busy=counts[BusyClass.BUSY] / n,
                    non_busy=counts[BusyClass.NON_BUSY] / n,
                    both=counts[BusyClass.BOTH] / n,
                )
            )
    return CarSegmentation(rows=rows, n_cars=n)
