"""Busy cells and each car's exposure to them (Section 4.3, Figure 7).

The paper calls a cell *busy* in a 15-minute bin when its average PRB
utilization exceeds 80% in that bin.  For every car it then measures the
share of its connected time spent in busy cells: most cars spend little time
there, but ~2.4% spend over half their connected time and ~1% spend all of it
on busy radios — the cars whose FOTA downloads would pour oil onto the fire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.stats import decile_shares
from repro.algorithms.timebins import BIN_SECONDS
from repro.cdr.records import CDRBatch
from repro.network.load import CellLoadModel

#: The paper's busy threshold on U_PRB per 15-minute bin.
BUSY_THRESHOLD = 0.80


class BusySchedule:
    """Per-cell boolean busy masks over the study's 15-minute bins.

    Wraps either a :class:`CellLoadModel` (the synthetic network's counters)
    or explicit per-cell utilization series, and answers "was this cell busy
    during this bin".  Cells with no known series are treated as never busy,
    matching how an operator handles cells missing counters.
    """

    def __init__(
        self,
        masks: dict[int, np.ndarray],
        threshold: float = BUSY_THRESHOLD,
    ) -> None:
        if not 0 < threshold < 1:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self._masks = masks
        self.threshold = threshold

    @classmethod
    def from_load_model(
        cls, model: CellLoadModel, threshold: float = BUSY_THRESHOLD
    ) -> "BusySchedule":
        """Lazily-materialized schedule backed by a load model."""
        schedule = cls({}, threshold)
        schedule._model = model  # type: ignore[attr-defined]
        return schedule

    @classmethod
    def from_series(
        cls, series: dict[int, np.ndarray], threshold: float = BUSY_THRESHOLD
    ) -> "BusySchedule":
        """Schedule from explicit per-cell utilization series."""
        return cls({cid: np.asarray(s) > threshold for cid, s in series.items()}, threshold)

    def busy_mask(self, cell_id: int) -> np.ndarray | None:
        """Boolean per-bin busy mask for a cell, or ``None`` when unknown."""
        mask = self._masks.get(cell_id)
        if mask is None:
            model: CellLoadModel | None = getattr(self, "_model", None)
            if model is None or cell_id not in model.topology.cells:
                return None
            mask = model.series(cell_id) > self.threshold
            self._masks[cell_id] = mask
        return mask

    def is_busy(self, cell_id: int, global_bin: int) -> bool:
        """Whether the cell was busy in the given absolute 15-minute bin."""
        mask = self.busy_mask(cell_id)
        if mask is None or not 0 <= global_bin < mask.size:
            return False
        return bool(mask[global_bin])


@dataclass(frozen=True)
class BusyExposure:
    """Per-car busy-time exposure (the data behind Figure 7)."""

    car_ids: list[str]
    #: Fraction of each car's connected time spent in busy cells, in [0, 1].
    busy_share: np.ndarray
    #: Fraction of each car's connected time in *non*-busy cells.
    nonbusy_share: np.ndarray

    def share_distribution(self) -> np.ndarray:
        """Figure 7a: proportion of cars per 10%-wide busy-share bucket.

        Eleven buckets: [0,10%), ..., [90%,100%), and exactly-100% cars
        merged into the last bucket.
        """
        edges = np.arange(0.0, 1.1, 0.1)
        edges[-1] = 1.0 + 1e-9
        return decile_shares(self.busy_share, edges)

    def share_distribution_above(self, floor: float = 0.5) -> np.ndarray:
        """Figure 7b: distribution of busy share among cars above ``floor``.

        Five 10%-wide buckets from ``floor`` to 100% (the last closed),
        normalized over the cars whose busy share is at least ``floor`` —
        the zoomed panel the paper uses to show the heavy-exposure tail's
        internal structure.  All-zero when no car reaches the floor.
        """
        if not 0 <= floor < 1:
            raise ValueError(f"floor must be in [0, 1), got {floor}")
        tail = self.busy_share[self.busy_share >= floor]
        edges = np.linspace(floor, 1.0, 6)
        edges[-1] = 1.0 + 1e-9
        if tail.size == 0:
            return np.zeros(5)
        return decile_shares(tail, edges)

    def fraction_above(self, threshold: float) -> float:
        """Proportion of cars with busy share strictly above ``threshold``."""
        if self.busy_share.size == 0:
            return 0.0
        return float((self.busy_share > threshold).mean())

    def fraction_all_busy(self, tolerance: float = 1e-9) -> float:
        """Proportion of cars spending (essentially) all time in busy cells."""
        if self.busy_share.size == 0:
            return 0.0
        return float((self.busy_share >= 1.0 - tolerance).mean())


def busy_exposure(batch: CDRBatch, schedule: BusySchedule) -> BusyExposure:
    """Compute every car's busy/non-busy connected-time split.

    Each record's duration is apportioned to the 15-minute bins it overlaps;
    seconds in bins where the record's cell was busy count as busy time.
    """
    car_ids = batch.car_ids()
    busy = np.zeros(len(car_ids))
    total = np.zeros(len(car_ids))
    index = {car: i for i, car in enumerate(car_ids)}
    for rec in batch:
        i = index[rec.car_id]
        mask = schedule.busy_mask(rec.cell_id)
        for b in rec.interval.bins_straddled(BIN_SECONDS):
            lo = max(rec.start, b * BIN_SECONDS)
            hi = min(rec.end, (b + 1) * BIN_SECONDS)
            seconds = max(0.0, hi - lo)
            total[i] += seconds
            if mask is not None and 0 <= b < mask.size and mask[b]:
                busy[i] += seconds
    safe_total = np.where(total > 0, total, 1.0)
    busy_share = np.where(total > 0, busy / safe_total, 0.0)
    return BusyExposure(
        car_ids=car_ids,
        busy_share=busy_share,
        nonbusy_share=np.where(total > 0, 1.0 - busy / safe_total, 0.0),
    )
