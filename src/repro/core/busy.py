"""Busy cells and each car's exposure to them (Section 4.3, Figure 7).

The paper calls a cell *busy* in a 15-minute bin when its average PRB
utilization exceeds 80% in that bin.  For every car it then measures the
share of its connected time spent in busy cells: most cars spend little time
there, but ~2.4% spend over half their connected time and ~1% spend all of it
on busy radios — the cars whose FOTA downloads would pour oil onto the fire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.segments import ragged_ranges
from repro.algorithms.stats import decile_shares
from repro.algorithms.timebins import BIN_SECONDS
from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.records import CDRBatch
from repro.network.load import CellLoadModel

#: The paper's busy threshold on U_PRB per 15-minute bin.
BUSY_THRESHOLD = 0.80

#: Default byte cap on the cached :meth:`BusySchedule.mask_table` grid.
#: A paper-scale topology (tens of thousands of cells x a 90-day bin axis)
#: stays well under this; anything larger is rebuilt on demand instead of
#: pinned for the schedule's lifetime.
MASK_TABLE_CACHE_BYTES = 256 * 1024 * 1024


class BusySchedule:
    """Per-cell boolean busy masks over the study's 15-minute bins.

    Wraps either a :class:`CellLoadModel` (the synthetic network's counters)
    or explicit per-cell utilization series, and answers "was this cell busy
    during this bin".  Cells with no known series are treated as never busy,
    matching how an operator handles cells missing counters.
    """

    def __init__(
        self,
        masks: dict[int, npt.NDArray[np.bool_]],
        threshold: float = BUSY_THRESHOLD,
        mask_table_cache_bytes: int = MASK_TABLE_CACHE_BYTES,
    ) -> None:
        if not 0 < threshold < 1:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if mask_table_cache_bytes < 0:
            raise ValueError(
                "mask_table_cache_bytes must be >= 0, got "
                f"{mask_table_cache_bytes}"
            )
        self._masks = masks
        self.threshold = threshold
        self.mask_table_cache_bytes = mask_table_cache_bytes
        self._table: (
            tuple[
                npt.NDArray[np.int64],
                npt.NDArray[np.int64],
                npt.NDArray[np.bool_],
            ]
            | None
        ) = None

    @classmethod
    def from_load_model(
        cls, model: CellLoadModel, threshold: float = BUSY_THRESHOLD
    ) -> "BusySchedule":
        """Lazily-materialized schedule backed by a load model."""
        schedule = cls({}, threshold)
        schedule._model = model  # type: ignore[attr-defined]
        return schedule

    @classmethod
    def from_series(
        cls,
        series: dict[int, npt.NDArray[np.float64]],
        threshold: float = BUSY_THRESHOLD,
    ) -> "BusySchedule":
        """Schedule from explicit per-cell utilization series."""
        return cls(
            {cid: np.asarray(s) > threshold for cid, s in series.items()}, threshold
        )

    def busy_mask(self, cell_id: int) -> npt.NDArray[np.bool_] | None:
        """Boolean per-bin busy mask for a cell, or ``None`` when unknown."""
        mask = self._masks.get(cell_id)
        if mask is None:
            model: CellLoadModel | None = getattr(self, "_model", None)
            if model is None or cell_id not in model.topology.cells:
                return None
            mask = model.series(cell_id) > self.threshold
            self._masks[cell_id] = mask
        return mask

    def mask_table(
        self,
    ) -> tuple[
        npt.NDArray[np.int64], npt.NDArray[np.int64], npt.NDArray[np.bool_]
    ]:
        """Every known cell's mask as one padded grid, built once.

        Returns ``(cell_ids, lens, grid)``: sorted cell ids, each mask's
        bin count, and a ``(n_cells, max_bins)`` boolean grid padded with
        ``False``.  The fused busy kernel gathers straight from this layout
        instead of re-assembling a per-chunk table; the masks are a pure
        function of the load model, so the grid is cached for the
        schedule's lifetime (like the per-cell masks themselves) — but only
        while it fits ``mask_table_cache_bytes``.  An over-budget grid is
        returned without being stored, trading rebuild time for a bounded
        resident set in long-running processes such as the analysis
        service, which shares one schedule across every query for the same
        (scenario, days) key.
        """
        table = self._table
        if table is None:
            model: CellLoadModel | None = getattr(self, "_model", None)
            known = set(self._masks)
            if model is not None:
                known |= set(model.topology.cells)
            cell_ids = np.fromiter(
                sorted(known), dtype=np.int64, count=len(known)
            )
            masks = [self.busy_mask(int(c)) for c in cell_ids]
            lens = np.asarray(
                [0 if m is None else m.size for m in masks], dtype=np.int64
            )
            width = int(lens.max()) if len(masks) else 0
            grid = np.zeros((len(masks), width), dtype=np.bool_)
            for row, mask in enumerate(masks):
                if mask is not None:
                    grid[row, : mask.size] = mask
            table = (cell_ids, lens, grid)
            total_bytes = cell_ids.nbytes + lens.nbytes + grid.nbytes
            if total_bytes <= self.mask_table_cache_bytes:
                self._table = table
        return table

    def is_busy(self, cell_id: int, global_bin: int) -> bool:
        """Whether the cell was busy in the given absolute 15-minute bin."""
        mask = self.busy_mask(cell_id)
        if mask is None or not 0 <= global_bin < mask.size:
            return False
        return bool(mask[global_bin])


@dataclass(frozen=True)
class BusyExposure:
    """Per-car busy-time exposure (the data behind Figure 7)."""

    car_ids: list[str]
    #: Fraction of each car's connected time spent in busy cells, in [0, 1].
    busy_share: npt.NDArray[np.float64]
    #: Fraction of each car's connected time in *non*-busy cells.
    nonbusy_share: npt.NDArray[np.float64]

    def share_distribution(self) -> npt.NDArray[np.float64]:
        """Figure 7a: proportion of cars per 10%-wide busy-share bucket.

        Eleven buckets: [0,10%), ..., [90%,100%), and exactly-100% cars
        merged into the last bucket.
        """
        edges = np.arange(0.0, 1.1, 0.1)
        edges[-1] = 1.0 + 1e-9
        return decile_shares(self.busy_share, edges)

    def share_distribution_above(self, floor: float = 0.5) -> npt.NDArray[np.float64]:
        """Figure 7b: distribution of busy share among cars above ``floor``.

        Five 10%-wide buckets from ``floor`` to 100% (the last closed),
        normalized over the cars whose busy share is at least ``floor`` —
        the zoomed panel the paper uses to show the heavy-exposure tail's
        internal structure.  All-zero when no car reaches the floor.
        """
        if not 0 <= floor < 1:
            raise ValueError(f"floor must be in [0, 1), got {floor}")
        tail = self.busy_share[self.busy_share >= floor]
        edges = np.linspace(floor, 1.0, 6)
        edges[-1] = 1.0 + 1e-9
        if tail.size == 0:
            return np.zeros(5)
        return decile_shares(tail, edges)

    def fraction_above(self, threshold: float) -> float:
        """Proportion of cars with busy share strictly above ``threshold``."""
        if self.busy_share.size == 0:
            return 0.0
        return float((self.busy_share > threshold).mean())

    def fraction_all_busy(self, tolerance: float = 1e-9) -> float:
        """Proportion of cars spending (essentially) all time in busy cells."""
        if self.busy_share.size == 0:
            return 0.0
        return float((self.busy_share >= 1.0 - tolerance).mean())


def _shares(
    car_ids: list[str],
    busy: npt.NDArray[np.float64],
    total: npt.NDArray[np.float64],
) -> BusyExposure:
    """Close busy/total second tallies into a :class:`BusyExposure`."""
    safe_total = np.where(total > 0, total, 1.0)
    return BusyExposure(
        car_ids=car_ids,
        busy_share=np.where(total > 0, busy / safe_total, 0.0),
        nonbusy_share=np.where(total > 0, 1.0 - busy / safe_total, 0.0),
    )


def busy_exposure(batch: CDRBatch, schedule: BusySchedule) -> BusyExposure:
    """Compute every car's busy/non-busy connected-time split.

    Each record's duration is apportioned to the 15-minute bins it overlaps;
    seconds in bins where the record's cell was busy count as busy time.
    Records on cells without a busy mask skip the per-bin walk entirely —
    their whole duration is non-busy time.
    """
    car_ids = batch.car_ids()
    busy = np.zeros(len(car_ids))
    total = np.zeros(len(car_ids))
    index = {car: i for i, car in enumerate(car_ids)}
    for rec in batch:
        i = index[rec.car_id]
        mask = schedule.busy_mask(rec.cell_id)
        if mask is None:
            total[i] += rec.duration
            continue
        for b in rec.interval.bins_straddled(BIN_SECONDS):
            lo = max(rec.start, b * BIN_SECONDS)
            hi = min(rec.end, (b + 1) * BIN_SECONDS)
            seconds = max(0.0, hi - lo)
            total[i] += seconds
            if 0 <= b < mask.size and mask[b]:
                busy[i] += seconds
    return _shares(car_ids, busy, total)


def busy_exposure_columnar(
    col: ColumnarCDRBatch, schedule: BusySchedule
) -> BusyExposure:
    """Vectorized :func:`busy_exposure` over a columnar batch.

    Every record is split into one fragment per 15-minute bin it straddles
    (records on cells without a busy mask stay whole), all with array
    arithmetic: fragment seconds are clip differences, busy flags are one
    gather from a padded per-cell mask table fetched once per cell, and the
    per-car tallies accumulate with ``np.add.at``.  ``ufunc.at`` is
    unbuffered and applies fragments in index order — record-major,
    bin-minor, exactly the order the reference's ``+=`` loop adds them — so
    the resulting shares are bit-identical.
    """
    n = len(col)
    present = col.present_car_codes()
    car_ids = [col.car_ids[int(c)] for c in present]
    busy = np.zeros(len(car_ids))
    total = np.zeros(len(car_ids))
    if n == 0:
        return _shares(car_ids, busy, total)
    car_idx = np.searchsorted(present, col.car_code)

    # One busy-mask fetch per distinct cell; unknown cells get a zero-length
    # row in the padded table and are flagged so their records stay whole.
    cells, cell_row = np.unique(col.cell_id, return_inverse=True)
    masks = [schedule.busy_mask(int(c)) for c in cells]
    known_cell = np.asarray([m is not None for m in masks], dtype=np.bool_)
    lens = np.asarray(
        [0 if m is None else m.size for m in masks], dtype=np.int64
    )
    table = np.zeros((len(masks), int(lens.max()) if len(masks) else 0), np.bool_)
    for row, mask in enumerate(masks):
        if mask is not None:
            table[row, : mask.size] = mask

    start = col.start
    end = start + col.duration
    first = np.floor_divide(start, BIN_SECONDS).astype(np.int64)
    last = np.floor_divide(end, BIN_SECONDS).astype(np.int64)
    last[np.mod(end, BIN_SECONDS) == 0] -= 1
    # Zero-duration records still touch the single bin holding their start.
    last = np.maximum(last, first)
    known_row = known_cell[cell_row]
    counts = np.where(known_row, last - first + 1, 1)

    owner, offset = ragged_ranges(counts)
    f_bin = first[owner] + offset
    f_known = known_row[owner]
    lo = np.maximum(start[owner], f_bin * BIN_SECONDS)
    hi = np.minimum(end[owner], (f_bin + 1) * BIN_SECONDS)
    seconds = np.where(f_known, np.maximum(0.0, hi - lo), col.duration[owner])

    f_row = cell_row[owner]
    f_busy = np.zeros(len(owner), dtype=np.bool_)
    in_range = f_known & (f_bin >= 0) & (f_bin < lens[f_row])
    sel = np.flatnonzero(in_range)
    f_busy[sel] = table[f_row[sel], f_bin[sel]]

    np.add.at(total, car_idx[owner], seconds)
    np.add.at(busy, car_idx[owner[f_busy]], seconds[f_busy])
    return _shares(car_ids, busy, total)
