"""Origin-destination (OD) flow estimation from journeys.

The urban-planning lineage the paper cites ("A Tale of One City") turns
cellular traces into OD matrices: how many trips flow from zone A to zone B,
and when.  Journeys reconstructed from network sessions provide the trips;
zones are a coarse grid over the region.  The signature structure of commute
traffic — morning flows reversing in the evening — falls out and is what the
tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.timebins import StudyClock
from repro.core.journeys import Journey
from repro.network.cells import Cell
from repro.network.geometry import Point


@dataclass(frozen=True)
class ZoneGrid:
    """A rectangular zone grid over the region."""

    width_km: float
    height_km: float
    n_rows: int
    n_cols: int

    def __post_init__(self) -> None:
        if self.n_rows < 1 or self.n_cols < 1:
            raise ValueError("zone grid needs at least one row and column")
        if self.width_km <= 0 or self.height_km <= 0:
            raise ValueError("zone grid needs a positive extent")

    @property
    def n_zones(self) -> int:
        """Total zones."""
        return self.n_rows * self.n_cols

    def zone_of(self, point: Point) -> int:
        """Zone index of a location (clamped to the grid)."""
        col = min(int(point.x / self.width_km * self.n_cols), self.n_cols - 1)
        row = min(int(point.y / self.height_km * self.n_rows), self.n_rows - 1)
        return max(row, 0) * self.n_cols + max(col, 0)

    def zone_name(self, zone: int) -> str:
        """Human-readable ``r<row>c<col>`` label."""
        return f"r{zone // self.n_cols}c{zone % self.n_cols}"


@dataclass
class ODMatrix:
    """Directed zone-to-zone journey counts."""

    grid: ZoneGrid
    counts: npt.NDArray[np.int64]  # (n_zones, n_zones)

    @property
    def total_journeys(self) -> int:
        """Journeys aggregated into the matrix."""
        return int(self.counts.sum())

    def flow(self, origin: int, destination: int) -> int:
        """Journeys observed from ``origin`` zone to ``destination`` zone."""
        return int(self.counts[origin, destination])

    def top_pairs(self, n: int = 10) -> list[tuple[int, int, int]]:
        """The ``n`` heaviest (origin, destination, count) flows, inter-zone
        first (intra-zone circulation excluded)."""
        pairs = [
            (int(o), int(d), int(self.counts[o, d]))
            for o in range(self.grid.n_zones)
            for d in range(self.grid.n_zones)
            if o != d and self.counts[o, d] > 0
        ]
        pairs.sort(key=lambda p: p[2], reverse=True)
        return pairs[:n]

    def directional_asymmetry(self) -> float:
        """How one-way the flows are: ||F - F^T|| / ||F + F^T|| over
        inter-zone cells.  0 means perfectly balanced, 1 fully one-way."""
        off = self.counts - np.diag(np.diag(self.counts))
        denom = float(np.abs(off + off.T).sum())
        if denom == 0:
            return 0.0
        return float(np.abs(off - off.T).sum() / denom)


def build_od_matrix(
    journeys: list[Journey],
    cells: dict[int, Cell],
    grid: ZoneGrid,
    clock: StudyClock | None = None,
    hours: tuple[int, int] | None = None,
) -> ODMatrix:
    """Aggregate journeys into a zone OD matrix.

    ``hours=(lo, hi)`` keeps only journeys departing in local hours
    ``[lo, hi)`` (requires ``clock``), which is how the AM and PM matrices
    of commute analysis are cut.
    """
    if hours is not None:
        if clock is None:
            raise ValueError("hour filtering requires a clock")
        lo, hi = hours
        journeys = [j for j in journeys if lo <= clock.hour_of_day(j.start) < hi]
    # Pre-index site -> location once; journeys reference sites repeatedly.
    site_location: dict[int, Point] = {}
    for cell in cells.values():
        site_location.setdefault(cell.base_station_id, cell.location)
    counts = np.zeros((grid.n_zones, grid.n_zones), dtype=np.int64)
    for journey in journeys:
        origin_loc = site_location.get(journey.site_path[0])
        dest_loc = site_location.get(journey.site_path[-1])
        if origin_loc is None or dest_loc is None:
            continue
        counts[grid.zone_of(origin_loc), grid.zone_of(dest_loc)] += 1
    return ODMatrix(grid=grid, counts=counts)


def commute_reversal_score(
    morning: ODMatrix, evening: ODMatrix
) -> float:
    """Correlation between the morning flow matrix and the *transposed*
    evening matrix, inter-zone cells only.

    Commuting means morning A->B traffic returns B->A in the evening, so a
    healthy commute signature scores near its same-direction correlation's
    mirror.  Returns a value in [-1, 1].
    """
    mask = ~np.eye(morning.grid.n_zones, dtype=bool)
    a = morning.counts[mask].astype(float)
    b = evening.counts.T[mask].astype(float)
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])
