"""Fused single-pass analysis engine over shared columnar intermediates.

The per-analysis columnar twins (``daily_presence_columnar`` …) each
re-derive the same expensive intermediates from the same arrays: sort
permutations, ``np.unique`` vocabularies, packed day/car keys, bin
fragments, and segmented session scans.  This module fuses them: one pass
per chunk computes a shared :class:`ChunkIntermediates` bundle, and every
registered analysis kernel consumes that bundle — adding an analysis costs
one kernel, not one more pass over the data.

Three ways to run it, strongest guarantee first:

* **Whole batch / any chunk size, one process** — :class:`FusedEngine`
  consumed over chunks of a batch (or one shard's cdrz chunks) is
  *bit-identical* to the record-based references at any chunk size.  The
  carry discipline that makes this true: float chains are carried per car
  and per carrier (``np.cumsum`` over ``[carry] + chunk values`` reproduces
  the reference's sequential adds exactly), union segments and network
  sessions carry their open tail across chunk boundaries so each closed
  segment still contributes the reference's single subtraction, and the
  set-valued statistics (distinct day/car/cell pairs) are exact integers.
* **Map-reduce across shards** — workers export a picklable
  :class:`FusedPartial` per shard and the parent folds them in shard-index
  order (:func:`repro.core.mapreduce.analyze_shards_fused`).  The fold is
  deterministic and *worker-count invariant*: any ``--workers`` value
  yields the same bits.  Counts, pair sets and session/handover statistics
  merge exactly (bit-identical to the references); per-car and per-carrier
  float sums merge to reassociation precision against a serial pass — the
  same contract :mod:`repro.core.mapreduce` established for the streaming
  analyzer, for the same reason (a sequential float chain cannot be
  reconstructed from shard subtotals).

Kernels implement the small :class:`FusedAnalysis` protocol —
``consume(intermediates)`` plus the ``export_partial`` / ``absorb_partial``
pair — so the repo's merge-safety rules (RL010–RL013) apply to them
unchanged.  To register a new analysis: derive its per-chunk arithmetic
from :class:`ChunkIntermediates` (never from the raw chunk), keep every
cross-chunk float in a carried chain, give its partial an
``absorb_partial`` that folds a *later* shard into ``self``, and wire it
into :class:`FusedEngine`.  The record-based references and the columnar
twins remain the bit-identity oracle (``tests/core/test_fused_parity.py``).
"""

from __future__ import annotations

import copy
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass
from functools import cached_property
from typing import Protocol

import numpy as np
import numpy.typing as npt

from repro.algorithms.segments import ragged_ranges, segment_ids, segmented_cummax
from repro.algorithms.timebins import BIN_SECONDS, DAY, StudyClock
from repro.cdr.columnar import ColumnarCDRBatch
from repro.core.busy import BusyExposure, BusySchedule, _shares
from repro.core.carriers import CARRIER_ORDER, CarrierUsage
from repro.core.connect_time import ConnectTimeResult
from repro.core.handover import HandoverStats, HandoverType
from repro.core.preprocess import (
    GHOST_DURATION_S,
    GHOST_TOLERANCE_S,
    PreprocessConfig,
    PreprocessResult,
)
from repro.core.presence import DailyPresence
from repro.core.segmentation import CarSegmentation, segment_cars
from repro.network.cells import Cell

#: Collapse accumulated pair-set fragments into one union once the backlog
#: reaches this many chunk arrays, bounding finalize-time concatenation.
_PAIR_COLLAPSE = 32

#: Handover kind codes, in the classification precedence order the twins
#: use (``classify_handover``): technology change wins, then base station,
#: sector, carrier.
_KIND_ORDER = (
    HandoverType.INTER_RAT,
    HandoverType.INTER_BASE_STATION,
    HandoverType.INTER_SECTOR,
    HandoverType.INTER_CARRIER,
)


class ChunkIntermediates:
    """Shared per-chunk derivations, computed lazily and cached.

    Built once per raw columnar chunk; the ghost drop (Section 3 rule 1)
    happens here so every kernel sees the same cleaned arrays.  Each cached
    property is computed at most once per chunk no matter how many kernels
    ask for it — that sharing *is* the fusion:

    * ``car_order`` / ``car_starts`` — one stable argsort serves the
      connect-time union scan and the handover session scan.
    * ``trunc_cummax`` — one segmented high-water-mark scan serves both the
      truncated connect-time union and the handover gap test.
    * ``day_car_packed`` / ``day_cell_pairs`` — one packed ``np.unique``
      serves daily presence *and* days-on-network.
    * ``cell_groups`` — one ``np.unique(..., return_inverse=True)`` over
      the cell column serves the busy-mask gather.

    Invariants: all rows are ghost-free; ``start``/``duration`` are the
    chunk's original row order (time-sorted for every writer in
    :mod:`repro.cdr.io`); car-major views preserve chronology within each
    car because the underlying argsort is stable.
    """

    def __init__(
        self,
        chunk: ColumnarCDRBatch,
        clock: StudyClock,
        truncate_s: float,
    ) -> None:
        self.clock = clock
        self.truncate_s = truncate_s
        duration = chunk.duration
        ghost = np.abs(duration - GHOST_DURATION_S) <= GHOST_TOLERANCE_S
        self.n_ghosts = int(np.count_nonzero(ghost))
        if self.n_ghosts:
            keep = np.flatnonzero(~ghost)
            self.start = chunk.start[keep]
            self.duration = duration[keep]
            self.cell_id = chunk.cell_id[keep]
            self.car_code = chunk.car_code[keep]
            self.carrier_code = chunk.carrier_code[keep]
        else:
            self.start = chunk.start
            self.duration = duration
            self.cell_id = chunk.cell_id
            self.car_code = chunk.car_code
            self.carrier_code = chunk.carrier_code
        self.car_ids = chunk.car_ids
        self.carriers = chunk.carriers
        self.n = len(self.start)

    # -- plain columns ---------------------------------------------------

    @cached_property
    def trunc_duration(self) -> npt.NDArray[np.float64]:
        """Durations capped at ``truncate_s`` (Section 3 rule 2)."""
        out: npt.NDArray[np.float64] = np.minimum(self.duration, self.truncate_s)
        return out

    @cached_property
    def present_codes(self) -> npt.NDArray[np.int64]:
        """Sorted car codes occurring in this chunk, widened to int64.

        Computed with a vocabulary-sized flag array instead of a sort: the
        vocabulary is tiny next to the chunk, so membership costs O(n)
        instead of O(n log n).
        """
        flags = np.zeros(len(self.car_ids), dtype=np.bool_)
        flags[self.car_code] = True
        out: npt.NDArray[np.int64] = np.flatnonzero(flags).astype(np.int64)
        return out

    # -- calendar --------------------------------------------------------

    @cached_property
    def _study_rows(
        self,
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.bool_]]:
        """In-study day index per kept row plus the in-study mask.

        Float day indices dodge int64 overflow on absurd timestamps while
        comparing exactly like the references' arbitrary-precision ints
        (the established ``consume_columnar`` idiom).
        """
        day_f = np.floor_divide(self.start, DAY)
        in_study = (day_f >= 0.0) & (day_f < self.clock.n_days)
        return day_f[in_study].astype(np.int64), in_study

    @property
    def study_day(self) -> npt.NDArray[np.int64]:
        """Study day index of each in-study row (see :attr:`in_study`)."""
        return self._study_rows[0]

    @property
    def in_study(self) -> npt.NDArray[np.bool_]:
        """Mask over kept rows whose start falls inside the study period."""
        return self._study_rows[1]

    @cached_property
    def day_car_packed(self) -> npt.NDArray[np.int64]:
        """Distinct ``car * n_days + day`` keys over in-study rows.

        One packed ``np.unique`` answers both Figure 2 (per-day distinct
        cars: key ``% n_days``) and Figure 6 (per-car distinct days: key
        ``// n_days``) — integer-exact equivalents of the references'
        per-record set adds.
        """
        study_day, in_study = self._study_rows
        n_days = np.int64(self.clock.n_days)
        cars = self.car_code[in_study].astype(np.int64)
        # The key space (vocabulary x study days) is tiny next to the chunk,
        # so a presence bitmap beats sorting: O(n) and already ordered.
        flags = np.zeros(len(self.car_ids) * self.clock.n_days, dtype=np.bool_)
        flags[cars * n_days + study_day] = True
        out: npt.NDArray[np.int64] = np.flatnonzero(flags).astype(np.int64)
        return out

    @cached_property
    def day_cell_pairs(
        self,
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """Distinct ``(day, cell_id)`` pairs over in-study rows.

        Cell ids are arbitrary (possibly huge) int64 values, so the pairs
        are packed against the chunk's dense cell codes (shared with the
        busy kernel via :attr:`cell_groups`) and returned unpacked —
        cross-chunk unions re-pack against the global cell vocabulary.
        The day-by-vocabulary key space is tiny, so a presence bitmap
        replaces the sort.
        """
        study_day, in_study = self._study_rows
        cells_v, row_codes = self.cell_groups
        codes = row_codes[in_study]
        n_vocab = np.int64(max(int(cells_v.size), 1))
        flags = np.zeros(
            self.clock.n_days * int(n_vocab), dtype=np.bool_
        )
        flags[study_day * n_vocab + codes] = True
        packed = np.flatnonzero(flags).astype(np.int64)
        return packed // n_vocab, cells_v[packed % n_vocab]

    # -- car-major views -------------------------------------------------

    @cached_property
    def _car_major(
        self,
    ) -> tuple[npt.NDArray[np.intp], npt.NDArray[np.intp]]:
        """Stable car-major permutation and per-car run starts."""
        if self.n == 0:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        order = np.argsort(self.car_code, kind="stable").astype(np.intp)
        # Run starts fall on the cumulative counts of the present cars —
        # the sorted codes never need materializing.
        counts = np.bincount(self.car_code, minlength=len(self.car_ids))
        run_lens = counts[counts > 0]
        starts: npt.NDArray[np.intp] = np.concatenate(
            (
                np.zeros(1, dtype=np.intp),
                np.cumsum(run_lens[:-1]).astype(np.intp),
            )
        )
        return order, starts

    @property
    def car_order(self) -> npt.NDArray[np.intp]:
        """Car-major row permutation (chronological within each car)."""
        return self._car_major[0]

    @property
    def car_starts(self) -> npt.NDArray[np.intp]:
        """Offsets in :attr:`car_order` where each car's run begins."""
        return self._car_major[1]

    @cached_property
    def is_car_start(self) -> npt.NDArray[np.bool_]:
        """Boolean mask over car-major rows marking each car's first row."""
        flags = np.zeros(self.n, dtype=np.bool_)
        flags[self.car_starts] = True
        return flags

    @cached_property
    def s_sorted(self) -> npt.NDArray[np.float64]:
        """Start times in car-major order."""
        out: npt.NDArray[np.float64] = self.start[self.car_order]
        return out

    @cached_property
    def car_sorted(self) -> npt.NDArray[np.int64]:
        """Car codes in car-major order, widened to int64."""
        out = self.car_code[self.car_order].astype(np.int64)
        return out

    @cached_property
    def cell_sorted(self) -> npt.NDArray[np.int64]:
        """Cell ids in car-major order."""
        out: npt.NDArray[np.int64] = self.cell_id[self.car_order]
        return out

    @cached_property
    def full_cummax(self) -> npt.NDArray[np.float64]:
        """Segmented running max of *full* record ends, car-major."""
        ends = self.s_sorted + self.duration[self.car_order]
        return segmented_cummax(ends, self.is_car_start)

    @cached_property
    def trunc_cummax(self) -> npt.NDArray[np.float64]:
        """Segmented running max of *truncated* record ends, car-major.

        Shared by the truncated connect-time union and the handover
        session-gap test — the single most expensive scan in the chunk.
        """
        ends = self.s_sorted + self.trunc_duration[self.car_order]
        return segmented_cummax(ends, self.is_car_start)

    # -- cells and bins --------------------------------------------------

    @cached_property
    def cell_groups(
        self,
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """``(distinct cell ids, per-row inverse codes)`` in row order.

        When the ids are small non-negative integers (every synthetic
        topology and any sane operator export) a presence bitmap plus a
        rank table replaces the ``np.unique`` sort: O(n + max_id) instead
        of O(n log n).  Arbitrary ids fall back to ``np.unique``.
        """
        cell_id = self.cell_id
        if self.n:
            lo = int(cell_id.min())
            hi = int(cell_id.max())
            if 0 <= lo and hi < (1 << 22):
                flags = np.zeros(hi + 1, dtype=np.bool_)
                flags[cell_id] = True
                cells = np.flatnonzero(flags).astype(np.int64)
                rank = np.zeros(hi + 1, dtype=np.int64)
                rank[cells] = np.arange(cells.size, dtype=np.int64)
                return cells, rank[cell_id]
        cells, row = np.unique(cell_id, return_inverse=True)
        return cells, row.astype(np.int64)

    @cached_property
    def bin_span(
        self,
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """First and last 15-minute bin each *truncated* record straddles.

        Half-open interval semantics: an end exactly on a bin boundary
        excludes that bin, and zero-duration records still touch the single
        bin holding their start — matching ``Interval.bins_straddled``.
        """
        start = self.start
        end = start + self.trunc_duration
        first = np.floor_divide(start, BIN_SECONDS).astype(np.int64)
        last = np.floor_divide(end, BIN_SECONDS).astype(np.int64)
        last[np.mod(end, BIN_SECONDS) == 0] -= 1
        last = np.maximum(last, first)
        return first, last


class FusedAnalysis(Protocol):
    """What the engine requires of a registered analysis kernel.

    Beyond ``consume``, every shipped kernel also implements
    ``export_partial() -> <ItsPartial>`` with a concrete return annotation,
    and its partial class implements ``absorb_partial(partial) -> None``
    folding a *later* shard into ``self`` — the pair RL010 checks
    structurally, which is why the protocol does not redeclare them with a
    type-erased signature.
    """

    def consume(self, inter: ChunkIntermediates) -> None:
        """Fold one chunk's shared intermediates into the kernel state."""
        ...


def _car_index(union: tuple[str, ...]) -> dict[str, int]:
    """Map car id -> position in a sorted union vocabulary."""
    return {name: i for i, name in enumerate(union)}


def _union_vocab(a: tuple[str, ...], b: tuple[str, ...]) -> tuple[str, ...]:
    """Sorted union of two sorted vocabularies."""
    if a == b:
        return a
    return tuple(sorted(set(a) | set(b)))


def _remap_codes(
    old: tuple[str, ...], union: tuple[str, ...]
) -> npt.NDArray[np.int64]:
    """Old-code -> union-code translation table."""
    index = _car_index(union)
    return np.asarray([index[name] for name in old], dtype=np.int64)


def _dedupe_cell_days(
    days: npt.NDArray[np.int64], cells: npt.NDArray[np.int64]
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Distinct ``(day, cell_id)`` pairs from parallel (possibly dirty) arrays."""
    vocab, codes = np.unique(cells, return_inverse=True)
    n_vocab = np.int64(max(int(vocab.size), 1))
    packed = np.unique(days * n_vocab + codes.astype(np.int64))
    return packed // n_vocab, vocab[packed % n_vocab]


@dataclass
class PresencePartial:
    """Distinct day/car and day/cell pair sets of one shard (exact)."""

    car_ids: tuple[str, ...]
    n_days: int
    #: Distinct ``car * n_days + day`` keys, sorted.
    car_pairs: npt.NDArray[np.int64]
    #: Parallel arrays of distinct ``(day, cell_id)`` pairs.
    cell_days: npt.NDArray[np.int64]
    cell_ids: npt.NDArray[np.int64]

    def absorb_partial(self, partial: "PresencePartial") -> None:
        """Union another shard's pair sets into this one (integer-exact)."""
        if partial.n_days != self.n_days:
            raise ValueError(
                f"study length mismatch: {self.n_days} vs {partial.n_days} days"
            )
        n_days = np.int64(self.n_days)
        union = _union_vocab(self.car_ids, partial.car_ids)
        if union != self.car_ids:
            remap = _remap_codes(self.car_ids, union)
            self.car_pairs = (
                remap[self.car_pairs // n_days] * n_days + self.car_pairs % n_days
            )
        theirs = partial.car_pairs
        if union != partial.car_ids:
            remap = _remap_codes(partial.car_ids, union)
            theirs = remap[theirs // n_days] * n_days + theirs % n_days
        self.car_ids = union
        self.car_pairs = np.union1d(self.car_pairs, theirs)
        self.cell_days, self.cell_ids = _dedupe_cell_days(
            np.concatenate((self.cell_days, partial.cell_days)),
            np.concatenate((self.cell_ids, partial.cell_ids)),
        )


class PresenceKernel:
    """Figure 2: distinct cars and cells per study day.

    Accumulates the chunks' distinct packed pair sets and unions them at
    finalize — per-day counts are exact integers, so the closing divisions
    are the same single correctly-rounded IEEE operations the reference
    performs.
    """

    def __init__(self, clock: StudyClock, car_ids: tuple[str, ...]) -> None:
        self._clock = clock
        self._car_ids = car_ids
        self._car_pairs: list[npt.NDArray[np.int64]] = []
        self._cell_days: list[npt.NDArray[np.int64]] = []
        self._cell_ids: list[npt.NDArray[np.int64]] = []

    def consume(self, inter: ChunkIntermediates) -> None:
        self._car_pairs.append(inter.day_car_packed)
        days, cells = inter.day_cell_pairs
        self._cell_days.append(days)
        self._cell_ids.append(cells)
        if len(self._car_pairs) >= _PAIR_COLLAPSE:
            self._collapse()

    def _collapse(self) -> None:
        # Each consumed block is already a distinct sorted pair set, so a
        # single block needs no re-dedupe — only cross-chunk unions do.
        if len(self._car_pairs) == 1:
            return
        if not self._car_pairs:
            empty = np.empty(0, dtype=np.int64)
            self._car_pairs = [empty]
            self._cell_days = [empty]
            self._cell_ids = [empty]
            return
        self._car_pairs = [np.unique(np.concatenate(self._car_pairs))]
        days, cells = _dedupe_cell_days(
            np.concatenate(self._cell_days), np.concatenate(self._cell_ids)
        )
        self._cell_days = [days]
        self._cell_ids = [cells]

    def export_partial(self) -> PresencePartial:
        self._collapse()
        return PresencePartial(
            car_ids=self._car_ids,
            n_days=self._clock.n_days,
            car_pairs=self._car_pairs[0],
            cell_days=self._cell_days[0],
            cell_ids=self._cell_ids[0],
        )

    def finalize(self) -> DailyPresence:
        partial = self.export_partial()
        return finalize_presence(partial, self._clock)


def finalize_presence(
    partial: PresencePartial, clock: StudyClock
) -> DailyPresence:
    """Close a presence partial into the Figure 2 series.

    Relies on the partial invariant that both pair sets hold *distinct*
    pairs (chunks emit deduplicated sets and every union re-dedupes), so
    per-day counts are plain ``bincount`` tallies: each pair counts once.
    """
    n_days = np.int64(clock.n_days)
    pairs = partial.car_pairs
    car_counts = np.bincount(pairs % n_days, minlength=clock.n_days)
    # ``car_pairs`` is sorted, so distinct cars are its run boundaries.
    codes = pairs // n_days
    n_cars_total = (
        int(np.count_nonzero(np.diff(codes))) + 1 if codes.size else 0
    )
    n_cells_total = int(np.unique(partial.cell_ids).size)
    cell_counts = np.bincount(partial.cell_days, minlength=clock.n_days)
    return DailyPresence(
        clock=clock,
        car_fraction=car_counts / max(n_cars_total, 1),
        cell_fraction=cell_counts / max(n_cells_total, 1),
        n_cars_total=n_cars_total,
        n_cells_total=n_cells_total,
    )


@dataclass
class DaysPartial:
    """Distinct day/car pair set of one shard (exact)."""

    car_ids: tuple[str, ...]
    n_days: int
    car_pairs: npt.NDArray[np.int64]

    def absorb_partial(self, partial: "DaysPartial") -> None:
        """Union another shard's day/car pairs into this one."""
        if partial.n_days != self.n_days:
            raise ValueError(
                f"study length mismatch: {self.n_days} vs {partial.n_days} days"
            )
        n_days = np.int64(self.n_days)
        union = _union_vocab(self.car_ids, partial.car_ids)
        if union != self.car_ids:
            remap = _remap_codes(self.car_ids, union)
            self.car_pairs = (
                remap[self.car_pairs // n_days] * n_days + self.car_pairs % n_days
            )
        theirs = partial.car_pairs
        if union != partial.car_ids:
            remap = _remap_codes(partial.car_ids, union)
            theirs = remap[theirs // n_days] * n_days + theirs % n_days
        self.car_ids = union
        self.car_pairs = np.union1d(self.car_pairs, theirs)


class DaysKernel:
    """Figure 6: distinct study days each car appeared on the network."""

    def __init__(self, clock: StudyClock, car_ids: tuple[str, ...]) -> None:
        self._clock = clock
        self._car_ids = car_ids
        self._car_pairs: list[npt.NDArray[np.int64]] = []

    def consume(self, inter: ChunkIntermediates) -> None:
        self._car_pairs.append(inter.day_car_packed)
        if len(self._car_pairs) >= _PAIR_COLLAPSE:
            self._car_pairs = [np.unique(np.concatenate(self._car_pairs))]

    def export_partial(self) -> DaysPartial:
        # Chunk blocks are already distinct sorted sets; only cross-chunk
        # unions need the dedupe.
        if len(self._car_pairs) != 1:
            self._car_pairs = [
                np.unique(np.concatenate(self._car_pairs))
                if self._car_pairs
                else np.empty(0, dtype=np.int64)
            ]
        return DaysPartial(
            car_ids=self._car_ids,
            n_days=self._clock.n_days,
            car_pairs=self._car_pairs[0],
        )

    def finalize(self) -> dict[str, int]:
        partial = self.export_partial()
        return finalize_days(partial)


def finalize_days(partial: DaysPartial) -> dict[str, int]:
    """Close a days partial into the per-car distinct-day counts."""
    codes, counts = np.unique(
        partial.car_pairs // np.int64(partial.n_days), return_counts=True
    )
    return {
        partial.car_ids[int(c)]: int(n)
        for c, n in zip(codes.tolist(), counts.tolist())
    }


@dataclass
class CarriersPartial:
    """Per-carrier time chains and distinct carrier/car pairs of one shard."""

    car_ids: tuple[str, ...]
    carrier_names: tuple[str, ...]
    #: Per carrier-vocab-entry sequential duration sums.
    time: npt.NDArray[np.float64]
    total_time: float
    #: Distinct ``carrier * n_car_vocab + car`` keys, sorted.
    pairs: npt.NDArray[np.int64]
    #: Per car-vocab-entry "appeared in the shard" flags.
    seen: npt.NDArray[np.bool_]

    def absorb_partial(self, partial: "CarriersPartial") -> None:
        """Fold a later shard: exact pair/flag unions, float sums added."""
        car_union = _union_vocab(self.car_ids, partial.car_ids)
        carrier_union = _union_vocab(self.carrier_names, partial.carrier_names)
        n_cars = np.int64(max(len(car_union), 1))
        time = np.zeros(len(carrier_union))
        seen = np.zeros(len(car_union), dtype=np.bool_)
        remapped: list[npt.NDArray[np.int64]] = []
        for part in (self, partial):
            car_map = _remap_codes(part.car_ids, car_union)
            carrier_map = _remap_codes(part.carrier_names, carrier_union)
            time[carrier_map] += part.time
            seen[car_map] |= part.seen
            old_cars = np.int64(max(len(part.car_ids), 1))
            remapped.append(
                carrier_map[part.pairs // old_cars] * n_cars
                + car_map[part.pairs % old_cars]
            )
        merged = np.union1d(remapped[0], remapped[1])
        self.car_ids = car_union
        self.carrier_names = carrier_union
        self.time = time
        self.total_time = self.total_time + partial.total_time
        self.pairs = merged
        self.seen = seen


class CarriersKernel:
    """Table 3: per-carrier car reach and time share.

    Per-carrier and total duration sums run as carry-chained ``np.cumsum``
    over each chunk's rows in batch order — exactly the sequence of adds the
    reference's ``+=`` loop performs, so a single-engine pass is
    bit-identical at any chunk size.  Distinct (carrier, car) pairs replace
    the reference's per-carrier sets with one packed ``np.unique``.
    """

    def __init__(
        self,
        car_ids: tuple[str, ...],
        carrier_names: tuple[str, ...],
        carriers: tuple[str, ...],
    ) -> None:
        self._car_ids = car_ids
        self._carrier_names = carrier_names
        self._carriers = carriers
        vocab = {name: i for i, name in enumerate(carrier_names)}
        self._tracked = [
            code for name in carriers if (code := vocab.get(name)) is not None
        ]
        self._time = np.zeros(len(carrier_names))
        self._total_time = 0.0
        self._pairs: list[npt.NDArray[np.int64]] = []
        self._seen = np.zeros(len(car_ids), dtype=np.bool_)

    def consume(self, inter: ChunkIntermediates) -> None:
        if inter.n == 0:
            return
        duration = inter.duration
        self._total_time = float(
            np.cumsum(np.concatenate(([self._total_time], duration)))[-1]
        )
        for code in self._tracked:
            rows = inter.carrier_code == code
            if rows.any():
                self._time[code] = np.cumsum(
                    np.concatenate(([self._time[code]], duration[rows]))
                )[-1]
        n_cars = np.int64(max(len(self._car_ids), 1))
        flags = np.zeros(
            len(self._carrier_names) * int(n_cars), dtype=np.bool_
        )
        flags[
            inter.carrier_code.astype(np.int64) * n_cars
            + inter.car_code.astype(np.int64)
        ] = True
        self._pairs.append(np.flatnonzero(flags).astype(np.int64))
        self._seen[inter.present_codes] = True
        if len(self._pairs) >= _PAIR_COLLAPSE:
            self._pairs = [np.unique(np.concatenate(self._pairs))]

    def export_partial(self) -> CarriersPartial:
        if len(self._pairs) != 1:
            self._pairs = [
                np.unique(np.concatenate(self._pairs))
                if self._pairs
                else np.empty(0, dtype=np.int64)
            ]
        return CarriersPartial(
            car_ids=self._car_ids,
            carrier_names=self._carrier_names,
            time=self._time,
            total_time=self._total_time,
            pairs=self._pairs[0],
            seen=self._seen,
        )

    def finalize(self) -> CarrierUsage:
        return finalize_carriers(self.export_partial(), self._carriers)


def finalize_carriers(
    partial: CarriersPartial, carriers: tuple[str, ...] = CARRIER_ORDER
) -> CarrierUsage:
    """Close a carriers partial into Table 3."""
    total_time = partial.total_time
    n_cars_total = int(np.count_nonzero(partial.seen))
    n_cars = max(n_cars_total, 1)
    n_car_vocab = np.int64(max(len(partial.car_ids), 1))
    per_carrier_cars = np.bincount(
        partial.pairs // n_car_vocab, minlength=len(partial.carrier_names)
    )
    vocab = {name: i for i, name in enumerate(partial.carrier_names)}
    cars_fraction: dict[str, float] = {}
    time_fraction: dict[str, float] = {}
    for name in carriers:
        code = vocab.get(name)
        if code is None or int(per_carrier_cars[code]) == 0:
            cars_fraction[name] = 0.0
            time_fraction[name] = 0.0
            continue
        cars_fraction[name] = int(per_carrier_cars[code]) / n_cars
        time_fraction[name] = (
            float(partial.time[code]) / total_time if total_time > 0 else 0.0
        )
    return CarrierUsage(
        cars_fraction=cars_fraction,
        time_fraction=time_fraction,
        n_cars=n_cars_total,
        total_time_s=total_time,
    )


@dataclass
class BusyPartial:
    """Per-car busy/total second tallies of one shard."""

    car_ids: tuple[str, ...]
    busy: npt.NDArray[np.float64]
    total: npt.NDArray[np.float64]
    seen: npt.NDArray[np.bool_]

    def absorb_partial(self, partial: "BusyPartial") -> None:
        """Fold a later shard: flags union exactly, float tallies added."""
        union = _union_vocab(self.car_ids, partial.car_ids)
        busy = np.zeros(len(union))
        total = np.zeros(len(union))
        seen = np.zeros(len(union), dtype=np.bool_)
        for part in (self, partial):
            remap = _remap_codes(part.car_ids, union)
            busy[remap] += part.busy
            total[remap] += part.total
            seen[remap] |= part.seen
        self.car_ids = union
        self.busy = busy
        self.total = total
        self.seen = seen


class BusyKernel:
    """Figure 7: per-car seconds in busy vs all cells.

    The twin's fragment machinery, indexed straight by car code into
    vocabulary-sized tallies: each truncated record splits into one fragment
    per 15-minute bin it straddles (records on cells without a busy mask
    stay whole), fragment seconds accumulate with the unbuffered
    ``np.add.at`` in record-major bin-minor order — the reference's add
    order — so a single-engine pass is bit-identical at any chunk size.
    Busy bits gather from the schedule's cached whole-directory mask grid
    (:meth:`BusySchedule.mask_table`) instead of re-assembling a per-chunk
    table.
    """

    def __init__(self, schedule: BusySchedule, car_ids: tuple[str, ...]) -> None:
        self._schedule = schedule
        self._car_ids = car_ids
        self._busy = np.zeros(len(car_ids))
        self._total = np.zeros(len(car_ids))
        self._seen = np.zeros(len(car_ids), dtype=np.bool_)

    def consume(self, inter: ChunkIntermediates) -> None:
        if inter.n == 0:
            return
        self._seen[inter.present_codes] = True
        cells, cell_row = inter.cell_groups
        dir_cells, dir_lens, grid = self._schedule.mask_table()
        if dir_cells.size:
            pos = np.searchsorted(dir_cells, cells)
            pos_c = np.minimum(pos, dir_cells.size - 1)
            known_cell = dir_cells[pos_c] == cells
        else:
            known_cell = np.zeros(len(cells), dtype=np.bool_)
            pos_c = np.zeros(len(cells), dtype=np.intp)
        lens = np.where(known_cell, dir_lens[pos_c], 0)

        start = inter.start
        duration = inter.trunc_duration
        end = start + duration
        first, last = inter.bin_span
        known_row = known_cell[cell_row]
        counts = np.where(known_row, last - first + 1, 1)

        owner, offset = ragged_ranges(counts)
        f_bin = first[owner] + offset
        f_known = known_row[owner]
        lo = np.maximum(start[owner], f_bin * BIN_SECONDS)
        hi = np.minimum(end[owner], (f_bin + 1) * BIN_SECONDS)
        seconds = np.where(f_known, np.maximum(0.0, hi - lo), duration[owner])

        f_row = cell_row[owner]
        f_busy = np.zeros(len(owner), dtype=np.bool_)
        in_range = f_known & (f_bin >= 0) & (f_bin < lens[f_row])
        sel = np.flatnonzero(in_range)
        f_busy[sel] = grid[pos_c[f_row[sel]], f_bin[sel]]

        car = inter.car_code
        np.add.at(self._total, car[owner], seconds)
        np.add.at(self._busy, car[owner[f_busy]], seconds[f_busy])

    def export_partial(self) -> BusyPartial:
        return BusyPartial(
            car_ids=self._car_ids,
            busy=self._busy,
            total=self._total,
            seen=self._seen,
        )

    def finalize(self) -> BusyExposure:
        return finalize_busy(self.export_partial())


def finalize_busy(partial: BusyPartial) -> BusyExposure:
    """Close a busy partial into the per-car exposure shares."""
    present = np.flatnonzero(partial.seen)
    car_ids = [partial.car_ids[int(c)] for c in present]
    return _shares(car_ids, partial.busy[present], partial.total[present])


@dataclass
class ConnectPartial:
    """Per-car union-chain endpoint table of one shard (exact).

    A car's connected time is a sum of ``cm - start`` over its union chains
    (maximal runs of overlapping intervals).  The partial ships every
    chain's raw endpoints, grouped by car and chronological within car —
    no float arithmetic happens until finalize, so welding shards and then
    closing reproduces the reference's exact operation sequence: merging is
    comparisons and ``max`` only, and an earlier shard's last chain can
    swallow any prefix of a later shard's chains (one arbitrarily long
    record may span several of them), which the weld loop walks until the
    reference's ``start <= cm`` merge test first fails.
    """

    car_ids: tuple[str, ...]
    #: Chain car codes, grouped by car, chronological within car.
    car: npt.NDArray[np.int64]
    start: npt.NDArray[np.float64]
    cm: npt.NDArray[np.float64]
    #: Two chains of one car weld when the later one starts within this
    #: many seconds of the earlier one's running max — 0 is the pure
    #: interval union (connect time); 30 gives the paper's aggregate
    #: sessions (Section 3), the twinning extractor's session table.
    join_gap_s: float = 0.0

    def absorb_partial(self, partial: "ConnectPartial") -> None:
        """Weld a later shard's chain table onto this one (exact)."""
        if partial.join_gap_s != self.join_gap_s:
            raise ValueError(
                "cannot merge chain tables with different join gaps: "
                f"{self.join_gap_s} vs {partial.join_gap_s}"
            )
        union = _union_vocab(self.car_ids, partial.car_ids)
        acc_car = self.car
        if union != self.car_ids:
            acc_car = _remap_codes(self.car_ids, union)[acc_car]
        inc_car = partial.car
        if union != partial.car_ids:
            inc_car = _remap_codes(partial.car_ids, union)[inc_car]
        acc_cm = self.cm.copy()
        inc_start = partial.start
        inc_cm = partial.cm

        # Last chain row per car on the accumulated side; first run per car
        # on the incoming side.  Both tables are grouped by (monotone-
        # remapped) car code, so runs are contiguous.
        n_acc = len(acc_car)
        drop = np.zeros(len(inc_car), dtype=np.bool_)
        if n_acc and len(inc_car):
            acc_last: dict[int, int] = {}
            bounds = np.flatnonzero(np.diff(acc_car))
            for row in np.append(bounds, n_acc - 1).tolist():
                acc_last[int(acc_car[row])] = row
            inc_cars, inc_first = np.unique(inc_car, return_index=True)
            inc_end = np.append(inc_first[1:], len(inc_car))
            starts_l = inc_start.tolist()
            cms_l = inc_cm.tolist()
            gap = self.join_gap_s
            for c, j0, j1 in zip(
                inc_cars.tolist(), inc_first.tolist(), inc_end.tolist()
            ):
                row = acc_last.get(int(c))
                if row is None:
                    continue
                cm_acc = float(acc_cm[row])
                j = j0
                while j < j1 and starts_l[j] - cm_acc <= gap:
                    if cms_l[j] > cm_acc:
                        cm_acc = cms_l[j]
                    drop[j] = True
                    j += 1
                acc_cm[row] = cm_acc

        keep = ~drop
        car = np.concatenate((acc_car, inc_car[keep]))
        order = np.argsort(car, kind="stable")
        self.car_ids = union
        self.car = car[order]
        self.start = np.concatenate((self.start, inc_start[keep]))[order]
        self.cm = np.concatenate((acc_cm, inc_cm[keep]))[order]


class ConnectKernel:
    """Figure 3: per-car union-of-intervals connected seconds.

    Within a chunk, union chains come from the shared segmented running
    maximum; across chunks each car carries its open chain ``(start, cm)``
    so a chain closing later still contributes the reference's single
    ``cm - start`` subtraction.  A carried chain can swallow a *prefix* of
    the next chunk's chunk-local chains (a long earlier record may span
    several of them), handled per car before the vectorized interior adds.

    ``track_partials=False`` accumulates chain durations per car in
    chronological order — bit-identical to the reference at any chunk size.
    ``track_partials=True`` instead collects the chain *endpoints* for
    :class:`ConnectPartial`, deferring all float sums to the reducer's
    finalize — which is what makes the map-reduce path exact too.
    """

    def __init__(
        self,
        car_ids: tuple[str, ...],
        *,
        truncated: bool,
        track_partials: bool = False,
        join_gap_s: float = 0.0,
    ) -> None:
        n = len(car_ids)
        self._car_ids = car_ids
        self._truncated = truncated
        self._track = track_partials
        #: Chain-join tolerance: 0 unions overlapping intervals (connect
        #: time); a positive gap concatenates sessions, matching
        #: ``concatenate_gaps`` (``next.start - prev.end <= gap`` joins).
        self._gap = join_gap_s
        self._totals = np.zeros(n)
        self._open_start = np.zeros(n)
        self._open_cm = np.zeros(n)
        self._has_open = np.zeros(n, dtype=np.bool_)
        #: Closed-chain (car, start, cm) blocks, per-car chronological.
        self._blocks: list[
            tuple[
                npt.NDArray[np.int64],
                npt.NDArray[np.float64],
                npt.NDArray[np.float64],
            ]
        ] = []

    def consume(self, inter: ChunkIntermediates) -> None:
        n = inter.n
        if n == 0:
            return
        s = inter.s_sorted
        cm = inter.trunc_cummax if self._truncated else inter.full_cummax
        car = inter.car_sorted
        is_start = inter.is_car_start
        new_seg = is_start.copy()
        new_seg[1:] |= ~is_start[1:] & (s[1:] - cm[:-1] > self._gap)
        seg_first = np.flatnonzero(new_seg)
        seg_last = np.append(seg_first[1:] - 1, n - 1)
        seg_car = car[seg_first]
        seg_s = s[seg_first]
        seg_cm = cm[seg_last]
        n_seg = len(seg_first)
        run_first = np.flatnonzero(
            np.concatenate(([True], seg_car[1:] != seg_car[:-1]))
        )
        run_last = np.append(run_first[1:], n_seg)

        interior = np.zeros(n_seg, dtype=np.bool_)
        totals = self._totals
        track = self._track
        has_open = self._has_open
        open_start = self._open_start
        open_cm = self._open_cm
        close_car: list[int] = []
        close_s: list[float] = []
        close_cm: list[float] = []
        gap = self._gap
        for a, b in zip(run_first.tolist(), run_last.tolist()):
            c = int(seg_car[a])
            k = a
            if has_open[c]:
                oc = float(open_cm[c])
                while k < b and seg_s[k] - oc <= gap:
                    if seg_cm[k] > oc:
                        oc = float(seg_cm[k])
                    k += 1
                if k == b:
                    open_cm[c] = oc
                    continue
                if track:
                    close_car.append(c)
                    close_s.append(float(open_start[c]))
                    close_cm.append(oc)
                else:
                    totals[c] += oc - open_start[c]
            interior[k : b - 1] = True
            open_start[c] = seg_s[b - 1]
            open_cm[c] = seg_cm[b - 1]
            has_open[c] = True
        sel = np.flatnonzero(interior)
        if track:
            self._blocks.append(
                (
                    np.concatenate(
                        (np.asarray(close_car, dtype=np.int64), seg_car[sel])
                    ),
                    np.concatenate((np.asarray(close_s), seg_s[sel])),
                    np.concatenate((np.asarray(close_cm), seg_cm[sel])),
                )
            )
        else:
            np.add.at(totals, seg_car[sel], seg_cm[sel] - seg_s[sel])

    def export_partial(self) -> ConnectPartial:
        if not self._track:
            raise ValueError(
                "export_partial requires ConnectKernel(track_partials=True)"
            )
        opens = np.flatnonzero(self._has_open)
        blocks = self._blocks + [
            (
                opens.astype(np.int64),
                self._open_start[opens],
                self._open_cm[opens],
            )
        ]
        car = np.concatenate([b[0] for b in blocks])
        start = np.concatenate([b[1] for b in blocks])
        cm = np.concatenate([b[2] for b in blocks])
        # Stable car sort: blocks are appended chronologically and each
        # block is per-car chronological, so grouping by car preserves each
        # car's chain order; the open chains land last, where they belong.
        order = np.argsort(car, kind="stable")
        return ConnectPartial(
            car_ids=self._car_ids,
            car=car[order],
            start=start[order],
            cm=cm[order],
            join_gap_s=self._gap,
        )

    def totals_exact(
        self,
    ) -> tuple[npt.NDArray[np.intp], npt.NDArray[np.float64]]:
        """Present car codes and their closed totals (serial mode).

        Adds each car's still-open chain as the final ``cm - start``
        subtraction, exactly as the reference closes its last merged
        interval.  Only valid with ``track_partials=False``.
        """
        if self._track:
            raise ValueError(
                "totals_exact requires ConnectKernel(track_partials=False)"
            )
        present = np.flatnonzero(self._has_open)
        totals = self._totals[present] + (
            self._open_cm[present] - self._open_start[present]
        )
        return present, totals


def finalize_connect_partial(
    partial: ConnectPartial,
) -> tuple[npt.NDArray[np.intp], npt.NDArray[np.float64]]:
    """Present car codes and totals from a (possibly merged) chain table.

    One subtraction per chain and per-car in-order adds — the reference's
    exact operation sequence, so the result is bit-identical at any worker
    count.
    """
    present = np.unique(partial.car).astype(np.intp)
    totals = np.zeros(len(present))
    idx = np.searchsorted(present, partial.car)
    np.add.at(totals, idx, partial.cm - partial.start)
    return present, totals


# -- handovers (Section 4.5) ----------------------------------------------

#: Column layout of the packed int64 session table: car code, record count,
#: known-cell record count, handovers, then the first/last known-cell
#: attribute blocks (cell id, technology index, base station, sector; -1
#: where the session has no known-cell record yet).
(
    _H_CAR,
    _H_SIZE,
    _H_KNOWN,
    _H_HO,
    _H_FCELL,
    _H_FTECH,
    _H_FBS,
    _H_FSEC,
    _H_LCELL,
    _H_LTECH,
    _H_LBS,
    _H_LSEC,
) = range(12)


def _boundary_kind(
    l_tech: int, l_bs: int, l_sec: int, f_tech: int, f_bs: int, f_sec: int
) -> int:
    """Kind code of one handover between two known, different cells.

    Same precedence as ``classify_handover`` / the columnar twin's nested
    ``np.where``: technology change wins, then base station, sector,
    carrier — indices into :data:`_KIND_ORDER`.
    """
    if l_tech != f_tech:
        return 0
    if l_bs != f_bs:
        return 1
    if l_sec != f_sec:
        return 2
    return 3


@dataclass
class HandoverPartial:
    """Per-session handover table of one shard (exact).

    One row per network session, grouped by car code and chronological
    within car.  The whole table ships — not just counts — because a later
    shard's gap test can join its leading sessions onto this shard's last
    session per car, which changes the joined session's size/known tallies
    and can add a boundary handover; the ``min_records`` keep filter must
    therefore wait until :func:`finalize_handover`.  Every column is an
    integer count or attribute except the float ``start``/``cm`` endpoints,
    whose only merge operations are comparisons and ``max`` — so folding
    partials in shard order is bit-identical to the serial pass.
    """

    car_ids: tuple[str, ...]
    gap: float
    min_records: int
    #: Session first-record start and running-max end.
    start: npt.NDArray[np.float64]
    cm: npt.NDArray[np.float64]
    #: Per-session handover counts by kind, ``(n, 4)`` in ``_KIND_ORDER``.
    kinds: npt.NDArray[np.int64]
    #: Packed integer columns, ``(n, 12)`` — see ``_H_*``.
    ints: npt.NDArray[np.int64]

    def absorb_partial(self, partial: "HandoverPartial") -> None:
        """Weld a later shard's session table onto this one (exact).

        Per car, the incoming shard's leading sessions join this shard's
        last session while the reference's gap test holds (``start`` minus
        the joined session's running-max end ``<= gap``); a join may add one
        boundary handover between the two sessions' adjacent known cells.
        All arithmetic is integer adds plus float comparisons/``max``.
        """
        if partial.gap != self.gap or partial.min_records != self.min_records:
            raise ValueError("handover partials disagree on gap/min_records")
        union = _union_vocab(self.car_ids, partial.car_ids)
        acc_ints = self.ints
        if union != self.car_ids:
            acc_ints = acc_ints.copy()
            acc_ints[:, _H_CAR] = _remap_codes(self.car_ids, union)[
                acc_ints[:, _H_CAR]
            ]
        inc_ints = partial.ints.copy()
        if union != partial.car_ids:
            inc_ints[:, _H_CAR] = _remap_codes(partial.car_ids, union)[
                inc_ints[:, _H_CAR]
            ]
        acc_kinds = self.kinds
        acc_cm = self.cm.copy()
        inc_kinds = partial.kinds
        inc_start = partial.start
        inc_cm = partial.cm

        n_acc = len(acc_ints)
        n_inc = len(inc_ints)
        drop = np.zeros(n_inc, dtype=np.bool_)
        if n_acc and n_inc:
            acc_car = acc_ints[:, _H_CAR]
            acc_last: dict[int, int] = {}
            bounds = np.flatnonzero(np.diff(acc_car))
            for row in np.append(bounds, n_acc - 1).tolist():
                acc_last[int(acc_car[row])] = row
            inc_cars, inc_first = np.unique(
                inc_ints[:, _H_CAR], return_index=True
            )
            inc_end = np.append(inc_first[1:], n_inc)
            starts_l = inc_start.tolist()
            for c, j0, j1 in zip(
                inc_cars.tolist(), inc_first.tolist(), inc_end.tolist()
            ):
                r = acc_last.get(int(c))
                if r is None:
                    continue
                row = acc_ints[r]
                cm_acc = float(acc_cm[r])
                j = j0
                while j < j1 and starts_l[j] - cm_acc <= self.gap:
                    inc_row = inc_ints[j]
                    if (
                        row[_H_LCELL] >= 0
                        and inc_row[_H_FCELL] >= 0
                        and row[_H_LCELL] != inc_row[_H_FCELL]
                    ):
                        kind = _boundary_kind(
                            int(row[_H_LTECH]),
                            int(row[_H_LBS]),
                            int(row[_H_LSEC]),
                            int(inc_row[_H_FTECH]),
                            int(inc_row[_H_FBS]),
                            int(inc_row[_H_FSEC]),
                        )
                        row[_H_HO] += 1
                        acc_kinds[r, kind] += 1
                    row[_H_HO] += inc_row[_H_HO]
                    acc_kinds[r] += inc_kinds[j]
                    row[_H_SIZE] += inc_row[_H_SIZE]
                    row[_H_KNOWN] += inc_row[_H_KNOWN]
                    if inc_row[_H_FCELL] >= 0:
                        if row[_H_FCELL] < 0:
                            row[_H_FCELL : _H_FSEC + 1] = inc_row[
                                _H_FCELL : _H_FSEC + 1
                            ]
                        row[_H_LCELL:] = inc_row[_H_LCELL:]
                    if inc_cm[j] > cm_acc:
                        cm_acc = float(inc_cm[j])
                    drop[j] = True
                    j += 1
                acc_cm[r] = cm_acc

        keep = ~drop
        ints = np.concatenate((acc_ints, inc_ints[keep]))
        order = np.argsort(ints[:, _H_CAR], kind="stable")
        self.car_ids = union
        self.ints = ints[order]
        self.kinds = np.concatenate((acc_kinds, inc_kinds[keep]))[order]
        self.start = np.concatenate((self.start, inc_start[keep]))[order]
        self.cm = np.concatenate((acc_cm, inc_cm[keep]))[order]


class HandoverKernel:
    """Section 4.5: handovers per network session, classified by kind.

    Per chunk, network-session boundaries come from the shared truncated
    running-max scan (a session breaks exactly where the reference's gap
    grouping breaks), handovers are counted vectorized between consecutive
    known-cell rows of each session, and per-session first/last known-cell
    attributes are gathered for the boundary checks.  Each car carries its
    open session across chunks; a carried session can swallow a *prefix* of
    the next chunk's sessions (one long record keeps the gap test alive
    across several of them), merged per car with integer adds — so a
    single-engine pass is bit-identical to the reference at any chunk size,
    and the exported table merges across shards exactly.

    All shards of one trace must classify against the same ``cells``
    directory: attribute codes ride in the partials.
    """

    def __init__(
        self,
        car_ids: tuple[str, ...],
        cells: dict[int, Cell],
        *,
        gap: float,
        min_records: int,
    ) -> None:
        self._car_ids = car_ids
        self._gap = gap
        self._min_records = min_records
        directory = np.fromiter(sorted(cells), dtype=np.int64, count=len(cells))
        tech_index = {
            t: i
            for i, t in enumerate(
                sorted(
                    {c.technology for c in cells.values()}, key=lambda t: t.value
                )
            )
        }
        self._directory = directory
        self._dir_tech = np.asarray(
            [tech_index[cells[int(c)].technology] for c in directory],
            dtype=np.int64,
        )
        self._dir_bs = np.asarray(
            [cells[int(c)].base_station_id for c in directory], dtype=np.int64
        )
        self._dir_sector = np.asarray(
            [cells[int(c)].sector_index for c in directory], dtype=np.int64
        )
        n = len(car_ids)
        self._has_open = np.zeros(n, dtype=np.bool_)
        self._o_start = np.zeros(n)
        self._o_cm = np.zeros(n)
        self._o_kinds = np.zeros((n, 4), dtype=np.int64)
        self._o_ints = np.full((n, 12), -1, dtype=np.int64)
        #: Closed-session (start, cm, kinds, ints) blocks, per-car
        #: chronological within each block.
        self._blocks: list[
            tuple[
                npt.NDArray[np.float64],
                npt.NDArray[np.float64],
                npt.NDArray[np.int64],
                npt.NDArray[np.int64],
            ]
        ] = []

    def consume(self, inter: ChunkIntermediates) -> None:
        n = inter.n
        if n == 0:
            return
        s = inter.s_sorted
        cm = inter.trunc_cummax
        cell = inter.cell_sorted
        is_start = inter.is_car_start
        new_sess = is_start.copy()
        new_sess[1:] |= ~is_start[1:] & (s[1:] - cm[:-1] > self._gap)
        sid = segment_ids(new_sess)
        n_sess = int(sid[-1]) + 1
        sess_first = np.flatnonzero(new_sess)
        sess_last = np.append(sess_first[1:] - 1, n - 1)
        sess_car = inter.car_sorted[sess_first]
        sess_start = s[sess_first]
        sess_cm = cm[sess_last]

        # Directory membership at vocabulary level (shared with the busy
        # kernel's cell grouping), then gathered per car-major row — the
        # vocabulary is tiny next to the chunk.
        directory = self._directory
        cells_v, row_codes = inter.cell_groups
        if directory.size:
            pos_v = np.searchsorted(directory, cells_v)
            pos_vc = np.minimum(pos_v, directory.size - 1)
            known_v = directory[pos_vc] == cells_v
        else:
            known_v = np.zeros(cells_v.size, dtype=np.bool_)
            pos_vc = np.zeros(cells_v.size, dtype=np.intp)
        codes_sorted = row_codes[inter.car_order]
        known = known_v[codes_sorted]
        kr = np.flatnonzero(known)
        k_dir = pos_vc[codes_sorted[kr]]

        ints = np.full((n_sess, 12), -1, dtype=np.int64)
        ints[:, _H_CAR] = sess_car
        ints[:, _H_SIZE] = np.bincount(sid, minlength=n_sess)
        ints[:, _H_KNOWN] = np.bincount(sid[kr], minlength=n_sess)

        # Handovers between consecutive known rows of one session, plus the
        # kind breakdown — no keep filter here: sessions may still grow by
        # merging, so filtering waits for finalize.
        src = kr[:-1]
        dst = kr[1:]
        pair = (sid[src] == sid[dst]) & (cell[src] != cell[dst])
        pair_sid = sid[src[pair]]
        ints[:, _H_HO] = np.bincount(pair_sid, minlength=n_sess)
        src_a = k_dir[:-1][pair]
        dst_a = k_dir[1:][pair]
        kind = np.where(
            self._dir_tech[src_a] != self._dir_tech[dst_a],
            0,
            np.where(
                self._dir_bs[src_a] != self._dir_bs[dst_a],
                1,
                np.where(
                    self._dir_sector[src_a] != self._dir_sector[dst_a], 2, 3
                ),
            ),
        )
        kinds_per = np.bincount(
            pair_sid * 4 + kind, minlength=n_sess * 4
        ).reshape(n_sess, 4)

        # First/last known-cell attributes per session.  ``sid`` is
        # non-decreasing in car-major order, so the first/last known row of
        # each session falls on run boundaries — no sort needed.
        sid_k = sid[kr]
        if len(sid_k):
            new_run = np.concatenate(([True], sid_k[1:] != sid_k[:-1]))
            first_idx = np.flatnonzero(new_run)
            last_idx = np.append(first_idx[1:] - 1, len(sid_k) - 1)
            uniq = sid_k[first_idx]
        else:
            first_idx = np.empty(0, dtype=np.intp)
            last_idx = first_idx
            uniq = np.empty(0, dtype=np.int64)
        for col_cell, col_tech, idx in (
            (_H_FCELL, _H_FTECH, first_idx),
            (_H_LCELL, _H_LTECH, last_idx),
        ):
            at = k_dir[idx]
            ints[uniq, col_cell] = cell[kr[idx]]
            ints[uniq, col_tech] = self._dir_tech[at]
            ints[uniq, col_tech + 1] = self._dir_bs[at]
            ints[uniq, col_tech + 2] = self._dir_sector[at]

        # Per-car chunk-boundary merging: the carried open session swallows
        # the prefix of this chunk's sessions while the gap test holds.
        run_first = np.flatnonzero(
            np.concatenate(([True], sess_car[1:] != sess_car[:-1]))
        )
        run_last = np.append(run_first[1:], n_sess)
        interior = np.zeros(n_sess, dtype=np.bool_)
        has_open = self._has_open
        o_start = self._o_start
        o_cm = self._o_cm
        o_kinds = self._o_kinds
        o_ints = self._o_ints
        close_start: list[float] = []
        close_cm: list[float] = []
        close_kinds: list[npt.NDArray[np.int64]] = []
        close_ints: list[npt.NDArray[np.int64]] = []
        for a, b in zip(run_first.tolist(), run_last.tolist()):
            c = int(sess_car[a])
            k = a
            if has_open[c]:
                row = o_ints[c]
                ocm = float(o_cm[c])
                while k < b and sess_start[k] - ocm <= self._gap:
                    inc = ints[k]
                    if (
                        row[_H_LCELL] >= 0
                        and inc[_H_FCELL] >= 0
                        and row[_H_LCELL] != inc[_H_FCELL]
                    ):
                        bk = _boundary_kind(
                            int(row[_H_LTECH]),
                            int(row[_H_LBS]),
                            int(row[_H_LSEC]),
                            int(inc[_H_FTECH]),
                            int(inc[_H_FBS]),
                            int(inc[_H_FSEC]),
                        )
                        row[_H_HO] += 1
                        o_kinds[c, bk] += 1
                    row[_H_HO] += inc[_H_HO]
                    o_kinds[c] += kinds_per[k]
                    row[_H_SIZE] += inc[_H_SIZE]
                    row[_H_KNOWN] += inc[_H_KNOWN]
                    if inc[_H_FCELL] >= 0:
                        if row[_H_FCELL] < 0:
                            row[_H_FCELL : _H_FSEC + 1] = inc[
                                _H_FCELL : _H_FSEC + 1
                            ]
                        row[_H_LCELL:] = inc[_H_LCELL:]
                    if sess_cm[k] > ocm:
                        ocm = float(sess_cm[k])
                    k += 1
                o_cm[c] = ocm
                if k == b:
                    continue
                close_start.append(float(o_start[c]))
                close_cm.append(ocm)
                close_kinds.append(o_kinds[c].copy())
                close_ints.append(o_ints[c].copy())
            interior[k : b - 1] = True
            o_start[c] = sess_start[b - 1]
            o_cm[c] = sess_cm[b - 1]
            o_kinds[c] = kinds_per[b - 1]
            o_ints[c] = ints[b - 1]
            has_open[c] = True

        sel = np.flatnonzero(interior)
        self._blocks.append(
            (
                np.concatenate((np.asarray(close_start), sess_start[sel])),
                np.concatenate((np.asarray(close_cm), sess_cm[sel])),
                np.concatenate(
                    (
                        np.asarray(close_kinds, dtype=np.int64).reshape(-1, 4),
                        kinds_per[sel],
                    )
                ),
                np.concatenate(
                    (
                        np.asarray(close_ints, dtype=np.int64).reshape(-1, 12),
                        ints[sel],
                    )
                ),
            )
        )

    def export_partial(self) -> HandoverPartial:
        opens = np.flatnonzero(self._has_open)
        blocks = self._blocks + [
            (
                self._o_start[opens],
                self._o_cm[opens],
                self._o_kinds[opens],
                self._o_ints[opens],
            )
        ]
        start = np.concatenate([b[0] for b in blocks])
        cm = np.concatenate([b[1] for b in blocks])
        kinds = np.concatenate([b[2] for b in blocks])
        ints = np.concatenate([b[3] for b in blocks])
        # Stable car sort: blocks are chronological and per-car ordered
        # within themselves, and the open sessions sit in the final block,
        # so each car's sessions come out chronological with its open
        # session last — the reference's emission order.
        order = np.argsort(ints[:, _H_CAR], kind="stable")
        return HandoverPartial(
            car_ids=self._car_ids,
            gap=self._gap,
            min_records=self._min_records,
            start=start[order],
            cm=cm[order],
            kinds=kinds[order],
            ints=ints[order],
        )

    def finalize(self) -> HandoverStats:
        return finalize_handover(self.export_partial())


def finalize_handover(partial: HandoverPartial) -> HandoverStats:
    """Close a handover partial into the Section 4.5 statistics.

    Applies the reference's keep rule — drop sessions whose *known* records
    fall below ``min_records`` while their total size does not — and its
    emission order (cars sorted by id, sessions chronological), both of
    which the table already encodes.
    """
    size = partial.ints[:, _H_SIZE]
    known = partial.ints[:, _H_KNOWN]
    keep = ~(
        (known < partial.min_records) & (size >= partial.min_records)
    )
    per_session = partial.ints[keep, _H_HO].astype(float)
    kind_counts = partial.kinds[keep].sum(axis=0)
    types: Counter[HandoverType] = Counter()
    for i, ho_type in enumerate(_KIND_ORDER):
        if int(kind_counts[i]) > 0:
            types[ho_type] = int(kind_counts[i])
    return HandoverStats(per_session=per_session, type_counts=types)


# -- the engine -----------------------------------------------------------


@dataclass
class FusedPartial:
    """Everything one shard contributes, in one picklable bundle.

    Folding shards in index order with :meth:`absorb_partial` and then
    finalizing reproduces the serial engine: every sub-partial's merge is
    exact (integer counts, pair-set unions, endpoint welds), except the
    per-car busy tallies and per-carrier time sums, which merge to
    reassociation precision — the same contract ``core.mapreduce``
    documents for the streaming analyzer.
    """

    n_records: int
    n_ghosts: int
    presence: PresencePartial
    days: DaysPartial
    carriers: CarriersPartial
    connect_full: ConnectPartial
    connect_trunc: ConnectPartial
    busy: BusyPartial | None
    handover: HandoverPartial | None

    def absorb_partial(self, partial: "FusedPartial") -> None:
        """Fold a later shard's bundle into this one, kernel by kernel."""
        if (self.busy is None) != (partial.busy is None) or (
            self.handover is None
        ) != (partial.handover is None):
            raise ValueError("fused partials ran different kernel sets")
        self.n_records = self.n_records + partial.n_records
        self.n_ghosts = self.n_ghosts + partial.n_ghosts
        self.presence.absorb_partial(partial.presence)
        self.days.absorb_partial(partial.days)
        self.carriers.absorb_partial(partial.carriers)
        self.connect_full.absorb_partial(partial.connect_full)
        self.connect_trunc.absorb_partial(partial.connect_trunc)
        if self.busy is not None and partial.busy is not None:
            self.busy.absorb_partial(partial.busy)
        if self.handover is not None and partial.handover is not None:
            self.handover.absorb_partial(partial.handover)


@dataclass(frozen=True)
class FusedReport:
    """Results of one fused pass, one field per registered analysis.

    ``exposure`` and ``segmentation`` are ``None`` when the engine ran
    without a :class:`BusySchedule`; ``handovers`` is ``None`` without a
    cell directory — mirroring how :class:`AnalysisPipeline` treats those
    optional inputs.
    """

    presence: DailyPresence
    days: dict[str, int]
    connect_time: ConnectTimeResult
    carriers: CarrierUsage
    exposure: BusyExposure | None
    segmentation: CarSegmentation | None
    handovers: HandoverStats | None
    n_ghosts: int


class FusedEngine:
    """One pass per chunk, every Section 4 analysis at once.

    Feed raw columnar chunks (one shard's `.cdrz` chunks, or an in-memory
    batch in one go) to :meth:`consume`; ghost cleaning happens inside the
    shared :class:`ChunkIntermediates`, so no separate preprocessing pass
    is needed.  All chunks must share one car/carrier vocabulary — exactly
    the guarantee `.cdrz` shards give — and cross-shard work goes through
    :meth:`export_partial` / :meth:`FusedPartial.absorb_partial` instead of
    feeding one engine from two shards.

    ``track_partials`` selects the connect-time representation: ``False``
    (default) accumulates per-car totals in place — the fast path for a
    single-process run — while ``True`` keeps union-chain endpoint tables
    so the engine can export a :class:`FusedPartial`.  Both are
    bit-identical to the references for a single engine; only partial
    export requires tracking.
    """

    def __init__(
        self,
        clock: StudyClock,
        config: PreprocessConfig | None = None,
        *,
        schedule: BusySchedule | None = None,
        cells: dict[int, Cell] | None = None,
        carriers: tuple[str, ...] = CARRIER_ORDER,
        min_records: int = 2,
        track_partials: bool = False,
    ) -> None:
        self.clock = clock
        self.config = config or PreprocessConfig()
        self._schedule = schedule
        self._cells = cells
        self._carrier_order = carriers
        self._min_records = min_records
        self._track = track_partials
        self._n_records = 0
        self._n_ghosts = 0
        self._vocab: tuple[tuple[str, ...], tuple[str, ...]] | None = None
        self._kernels: list[FusedAnalysis] = []
        self._presence: PresenceKernel | None = None
        self._days: DaysKernel | None = None
        self._carriers: CarriersKernel | None = None
        self._connect_full: ConnectKernel | None = None
        self._connect_trunc: ConnectKernel | None = None
        self._busy: BusyKernel | None = None
        self._handover: HandoverKernel | None = None

    def _bind(
        self, car_ids: tuple[str, ...], carrier_names: tuple[str, ...]
    ) -> None:
        self._vocab = (car_ids, carrier_names)
        self._presence = PresenceKernel(self.clock, car_ids)
        self._days = DaysKernel(self.clock, car_ids)
        self._carriers = CarriersKernel(
            car_ids, carrier_names, self._carrier_order
        )
        self._connect_full = ConnectKernel(
            car_ids, truncated=False, track_partials=self._track
        )
        self._connect_trunc = ConnectKernel(
            car_ids, truncated=True, track_partials=self._track
        )
        kernels: list[FusedAnalysis] = [
            self._presence,
            self._days,
            self._carriers,
            self._connect_full,
            self._connect_trunc,
        ]
        if self._schedule is not None:
            self._busy = BusyKernel(self._schedule, car_ids)
            kernels.append(self._busy)
        if self._cells is not None:
            self._handover = HandoverKernel(
                car_ids,
                self._cells,
                gap=self.config.network_session_gap_s,
                min_records=self._min_records,
            )
            kernels.append(self._handover)
        self._kernels = kernels

    def consume(self, chunk: ColumnarCDRBatch) -> None:
        """Run every kernel over one raw chunk's shared intermediates."""
        if self._vocab is None:
            self._bind(chunk.car_ids, chunk.carriers)
        elif self._vocab != (chunk.car_ids, chunk.carriers):
            raise ValueError(
                "chunk vocabulary changed mid-stream; use one FusedEngine "
                "per shard and merge FusedPartials instead"
            )
        inter = ChunkIntermediates(chunk, self.clock, self.config.truncate_s)
        self._n_records += inter.n
        self._n_ghosts += inter.n_ghosts
        for kernel in self._kernels:
            kernel.consume(inter)

    def _bound(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        if self._vocab is None:
            raise ValueError("FusedEngine has consumed no chunks")
        return self._vocab

    def _connect_result(self) -> ConnectTimeResult:
        full = self._connect_full
        trunc = self._connect_trunc
        if full is None or trunc is None:
            raise ValueError("FusedEngine has consumed no chunks")
        if self._track:
            present, full_totals = finalize_connect_partial(
                full.export_partial()
            )
            _, trunc_totals = finalize_connect_partial(trunc.export_partial())
        else:
            present, full_totals = full.totals_exact()
            _, trunc_totals = trunc.totals_exact()
        car_vocab = self._bound()[0]
        duration = float(self.clock.duration)
        return ConnectTimeResult(
            car_ids=[car_vocab[int(c)] for c in present],
            full_share=full_totals / duration,
            truncated_share=trunc_totals / duration,
        )

    def finalize(self) -> FusedReport:
        """Close every kernel into its paper statistic."""
        self._bound()
        presence_k = self._presence
        days_k = self._days
        carriers_k = self._carriers
        if presence_k is None or days_k is None or carriers_k is None:
            raise ValueError("FusedEngine has consumed no chunks")
        days = days_k.finalize()
        exposure = self._busy.finalize() if self._busy is not None else None
        segmentation = (
            segment_cars(days, exposure) if exposure is not None else None
        )
        return FusedReport(
            presence=presence_k.finalize(),
            days=days,
            connect_time=self._connect_result(),
            carriers=carriers_k.finalize(),
            exposure=exposure,
            segmentation=segmentation,
            handovers=(
                self._handover.finalize() if self._handover is not None else None
            ),
            n_ghosts=self._n_ghosts,
        )

    def export_partial(self) -> FusedPartial:
        """Ship this shard's state for an index-ordered cross-shard fold."""
        self._bound()
        presence_k = self._presence
        days_k = self._days
        carriers_k = self._carriers
        full_k = self._connect_full
        trunc_k = self._connect_trunc
        if (
            presence_k is None
            or days_k is None
            or carriers_k is None
            or full_k is None
            or trunc_k is None
        ):
            raise ValueError("FusedEngine has consumed no chunks")
        return FusedPartial(
            n_records=self._n_records,
            n_ghosts=self._n_ghosts,
            presence=presence_k.export_partial(),
            days=days_k.export_partial(),
            carriers=carriers_k.export_partial(),
            connect_full=full_k.export_partial(),
            connect_trunc=trunc_k.export_partial(),
            busy=self._busy.export_partial() if self._busy is not None else None,
            handover=(
                self._handover.export_partial()
                if self._handover is not None
                else None
            ),
        )


def fold_fused_partials(partials: Iterable[FusedPartial]) -> FusedPartial:
    """Fold shard partials *in the given order* into a fresh accumulator.

    :meth:`FusedPartial.absorb_partial` mutates its receiver, so callers
    that keep per-shard partials cached — the analysis service re-folds its
    whole cache after every incremental ingest — must not fold into a
    cached object.  This helper deep-copies the first partial and absorbs
    the rest into the copy, leaving every input untouched; the caller
    supplies shard-index order, which is what makes the fold bit-identical
    to a cold full run regardless of how the cache was populated.
    """
    merged: FusedPartial | None = None
    for partial in partials:
        if merged is None:
            merged = copy.deepcopy(partial)
        else:
            merged.absorb_partial(partial)
    if merged is None:
        raise ValueError("fold_fused_partials needs at least one partial")
    return merged


def finalize_fused(partial: FusedPartial, clock: StudyClock) -> FusedReport:
    """Close a (possibly merged) :class:`FusedPartial` into a report."""
    days = finalize_days(partial.days)
    exposure = (
        finalize_busy(partial.busy) if partial.busy is not None else None
    )
    duration = float(clock.duration)
    present, full_totals = finalize_connect_partial(partial.connect_full)
    _, trunc_totals = finalize_connect_partial(partial.connect_trunc)
    connect = ConnectTimeResult(
        car_ids=[partial.connect_full.car_ids[int(c)] for c in present],
        full_share=full_totals / duration,
        truncated_share=trunc_totals / duration,
    )
    return FusedReport(
        presence=finalize_presence(partial.presence, clock),
        days=days,
        connect_time=connect,
        carriers=finalize_carriers(partial.carriers),
        exposure=exposure,
        segmentation=(
            segment_cars(days, exposure) if exposure is not None else None
        ),
        handovers=(
            finalize_handover(partial.handover)
            if partial.handover is not None
            else None
        ),
        n_ghosts=partial.n_ghosts,
    )


# -- standalone fused twins ----------------------------------------------
#
# One public entry point per analysis, running just that kernel over a
# whole columnar batch in one chunk.  They exist for the parity suite (the
# RL017 contract pairs each with its record-based reference) and for
# callers who want one statistic without a pipeline.

#: Calendar placeholder for kernels that never look at the clock.
_NO_CLOCK = StudyClock()

#: Truncation placeholder for kernels that never read truncated durations.
_TRUNCATE_DEFAULT = PreprocessConfig().truncate_s


def daily_presence_fused(
    col: ColumnarCDRBatch, clock: StudyClock
) -> DailyPresence:
    """Fused-kernel twin of :func:`repro.core.presence.daily_presence`."""
    kernel = PresenceKernel(clock, col.car_ids)
    kernel.consume(ChunkIntermediates(col, clock, _TRUNCATE_DEFAULT))
    return kernel.finalize()


def days_on_network_fused(
    col: ColumnarCDRBatch, clock: StudyClock
) -> dict[str, int]:
    """Fused-kernel twin of :func:`repro.core.segmentation.days_on_network`."""
    kernel = DaysKernel(clock, col.car_ids)
    kernel.consume(ChunkIntermediates(col, clock, _TRUNCATE_DEFAULT))
    return kernel.finalize()


def carrier_usage_fused(
    col: ColumnarCDRBatch, carriers: tuple[str, ...] = CARRIER_ORDER
) -> CarrierUsage:
    """Fused-kernel twin of :func:`repro.core.carriers.carrier_usage`."""
    kernel = CarriersKernel(col.car_ids, col.carriers, carriers)
    kernel.consume(ChunkIntermediates(col, _NO_CLOCK, _TRUNCATE_DEFAULT))
    return kernel.finalize()


def busy_exposure_fused(
    col: ColumnarCDRBatch,
    schedule: BusySchedule,
    truncate_s: float = 600.0,
) -> BusyExposure:
    """Fused-kernel twin of :func:`repro.core.busy.busy_exposure`.

    Accepts either the full or the already-truncated columnar view: the
    kernel caps durations at ``truncate_s`` itself, and capping is
    idempotent.
    """
    kernel = BusyKernel(schedule, col.car_ids)
    kernel.consume(ChunkIntermediates(col, _NO_CLOCK, truncate_s))
    return kernel.finalize()


def connect_time_analysis_fused(
    pre: PreprocessResult, clock: StudyClock
) -> ConnectTimeResult:
    """Fused twin of :func:`repro.core.connect_time.connect_time_analysis`.

    Both the full and the truncated union run off one shared intermediates
    bundle built from the full view — the truncated scan derives its capped
    durations internally.
    """
    col = pre.columnar_full()
    inter = ChunkIntermediates(col, clock, pre.config.truncate_s)
    full_k = ConnectKernel(col.car_ids, truncated=False)
    trunc_k = ConnectKernel(col.car_ids, truncated=True)
    full_k.consume(inter)
    trunc_k.consume(inter)
    present, full_totals = full_k.totals_exact()
    _, trunc_totals = trunc_k.totals_exact()
    duration = float(clock.duration)
    return ConnectTimeResult(
        car_ids=[col.car_ids[int(c)] for c in present],
        full_share=full_totals / duration,
        truncated_share=trunc_totals / duration,
    )


def handover_analysis_fused(
    pre: PreprocessResult,
    cells: dict[int, Cell],
    min_records: int = 2,
) -> HandoverStats:
    """Fused twin of :func:`repro.core.handover.handover_analysis`."""
    col = pre.columnar_full()
    kernel = HandoverKernel(
        col.car_ids,
        cells,
        gap=pre.config.network_session_gap_s,
        min_records=min_records,
    )
    kernel.consume(ChunkIntermediates(col, _NO_CLOCK, pre.config.truncate_s))
    return kernel.finalize()
