"""Behavioural clustering of cars.

The paper's introduction claims "cars can be clustered according to
predictability in their behavior", and Figure 5's three exemplars preview
the cluster archetypes.  This module makes the claim executable: each car's
24x7 connection matrix (normalized to a distribution over the week's 168
hours) is a behavioural fingerprint; k-means over those fingerprints
recovers the archetypes — strict commuters, all-week heavy users,
weekend-leaning cars — and the silhouette score quantifies how separable
they are.

Because fingerprints are normalized, the clustering sees *when* a car
connects, not *how much*; predictability differences show up through the
``regularity`` of each cluster's mean matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.kmeans import KMeans, KMeansResult, silhouette_score
from repro.algorithms.timebins import StudyClock
from repro.cdr.records import ConnectionRecord
from repro.core.matrices import UsageMatrix, usage_matrix

HOURS_PER_WEEK = 24 * 7


def behaviour_fingerprint(matrix: UsageMatrix) -> npt.NDArray[np.float64]:
    """A car's (168,) hour-of-week connection distribution.

    Rows of the 24x7 matrix flatten weekday-major (Monday hour 0 first) and
    normalize to sum 1, so heavy and light users with the same *schedule*
    get the same fingerprint.
    """
    flat = matrix.counts.T.reshape(HOURS_PER_WEEK).astype(np.float64)
    total = flat.sum()
    if total == 0:
        return flat
    return flat / total


@dataclass(frozen=True)
class BehaviourClusters:
    """Outcome of clustering the fleet's behaviour fingerprints."""

    car_ids: list[str]
    fingerprints: npt.NDArray[np.float64]  # (n_cars, 168)
    result: KMeansResult

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.result.k

    def members(self, label: int) -> list[str]:
        """Car ids assigned to cluster ``label``."""
        return [c for c, lab in zip(self.car_ids, self.result.labels) if lab == label]

    def mean_fingerprint(self, label: int) -> npt.NDArray[np.float64]:
        """Mean (168,) fingerprint of a cluster."""
        mask = self.result.labels == label
        if not mask.any():
            return np.zeros(HOURS_PER_WEEK)
        out: npt.NDArray[np.float64] = self.fingerprints[mask].mean(axis=0)
        return out

    def weekend_share(self, label: int) -> float:
        """Share of a cluster's connection mass on Saturday + Sunday."""
        fp = self.mean_fingerprint(label)
        return float(fp[5 * 24 :].sum())

    def commute_share(self, label: int) -> float:
        """Share of mass in weekday commute hours (7-9 and 16-19)."""
        fp = self.mean_fingerprint(label).reshape(7, 24)
        return float(fp[:5, 7:9].sum() + fp[:5, 16:19].sum())

    def silhouette(self) -> float:
        """Silhouette of the clustering (k >= 2)."""
        return silhouette_score(self.fingerprints, self.result.labels)

    def label_of(self, car_id: str) -> int:
        """Cluster label of one car."""
        idx = self.car_ids.index(car_id)
        return int(self.result.labels[idx])


def cluster_cars(
    by_car: dict[str, list[ConnectionRecord]],
    clock: StudyClock,
    k: int = 3,
    min_connections: int = 20,
    seed: int = 0,
) -> BehaviourClusters:
    """Cluster cars by their normalized 24x7 behaviour.

    Cars with fewer than ``min_connections`` hour-cell hits are excluded —
    a near-empty matrix is noise, not behaviour (they are the paper's rare
    cars, already segmented by Table 2).
    """
    car_ids: list[str] = []
    rows: list[npt.NDArray[np.float64]] = []
    for car_id in sorted(by_car):
        matrix = usage_matrix(car_id, by_car[car_id], clock)
        if matrix.total_connections < min_connections:
            continue
        car_ids.append(car_id)
        rows.append(behaviour_fingerprint(matrix))
    if len(rows) < k:
        raise ValueError(
            f"only {len(rows)} cars have >= {min_connections} connections; "
            f"cannot form {k} clusters"
        )
    fingerprints = np.stack(rows)
    result = KMeans(k, seed=seed).fit(fingerprints)
    return BehaviourClusters(
        car_ids=car_ids, fingerprints=fingerprints, result=result
    )


def choose_k(
    by_car: dict[str, list[ConnectionRecord]],
    clock: StudyClock,
    k_range: tuple[int, ...] = (2, 3, 4, 5),
    min_connections: int = 20,
    seed: int = 0,
) -> dict[int, float]:
    """Silhouette score per candidate ``k`` — the elbow check for Figure 5's
    implicit claim that a few archetypes cover the fleet."""
    scores: dict[int, float] = {}
    for k in k_range:
        clusters = cluster_cars(
            by_car, clock, k=k, min_connections=min_connections, seed=seed
        )
        scores[k] = clusters.silhouette()
    return scores
