"""Journey reconstruction from radio-level records.

Section 4.5 notes that radio logs under-sample mobility — cars time out
between data transfers — so connectivity gives a *lower bound* on movement.
Within that limit, a car's network session (records with gaps <= 10 minutes)
traces a journey: the sequence of base stations it touched.  With the cell
inventory's site coordinates, each journey yields a distance and speed
estimate, which is how operators infer commute corridors from CDRs (the
"Tale of One City" line of work the paper cites).

A journey requires at least two distinct base stations; stationary sessions
(one site) are counted separately — "just because a car connects ... it does
not mean it is mobile" (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.stats import percentile
from repro.algorithms.timebins import StudyClock
from repro.cdr.records import ConnectionRecord
from repro.core.preprocess import PreprocessResult
from repro.network.cells import Cell
from repro.network.geometry import Point, distance


@dataclass(frozen=True)
class Journey:
    """One reconstructed drive."""

    car_id: str
    start: float
    end: float
    #: Base station ids in visit order, consecutive duplicates collapsed.
    site_path: tuple[int, ...]
    #: Sum of straight-line hops between consecutive sites, km.
    distance_km: float

    @property
    def duration_s(self) -> float:
        """Journey extent in seconds (first record start to last record end)."""
        return self.end - self.start

    @property
    def n_sites(self) -> int:
        """Distinct consecutive base stations visited."""
        return len(self.site_path)

    @property
    def speed_kmh(self) -> float:
        """Mean speed implied by distance over duration; 0 for instant ones."""
        if self.duration_s <= 0:
            return 0.0
        return self.distance_km / (self.duration_s / 3600.0)


@dataclass
class JourneyStats:
    """Fleet-level journey aggregates."""

    journeys: list[Journey]
    n_stationary_sessions: int

    @property
    def n_journeys(self) -> int:
        """Reconstructed journeys with movement."""
        return len(self.journeys)

    def distances_km(self) -> npt.NDArray[np.float64]:
        """Per-journey distance estimates."""
        return np.asarray([j.distance_km for j in self.journeys], dtype=np.float64)

    def speeds_kmh(self) -> npt.NDArray[np.float64]:
        """Per-journey mean speed estimates."""
        return np.asarray([j.speed_kmh for j in self.journeys], dtype=np.float64)

    def durations_s(self) -> npt.NDArray[np.float64]:
        """Per-journey durations."""
        return np.asarray([j.duration_s for j in self.journeys], dtype=np.float64)

    def median_distance_km(self) -> float:
        """Median journey distance."""
        return percentile(self.distances_km(), 50)

    def departure_hour_histogram(self, clock: StudyClock) -> npt.NDArray[np.int64]:
        """Journeys per local hour of day, 24 entries — commute peaks show
        as a morning/evening double hump."""
        counts = np.zeros(24, dtype=np.int64)
        for j in self.journeys:
            counts[clock.hour_of_day(j.start)] += 1
        return counts

    def mobility_fraction(self) -> float:
        """Share of all network sessions that show movement."""
        total = self.n_journeys + self.n_stationary_sessions
        return self.n_journeys / total if total else 0.0


def journey_from_session(
    session: list[ConnectionRecord], cells: dict[int, Cell]
) -> Journey | None:
    """Reconstruct a journey from one network session.

    Returns ``None`` when the session touches fewer than two distinct
    consecutive base stations (a stationary session) or when no record's
    cell is known to the inventory.
    """
    path: list[int] = []
    locations: list[Point] = []
    for rec in session:
        cell = cells.get(rec.cell_id)
        if cell is None:
            continue
        if not path or path[-1] != cell.base_station_id:
            path.append(cell.base_station_id)
            locations.append(cell.location)
    if len(path) < 2:
        return None
    dist = sum(distance(a, b) for a, b in zip(locations, locations[1:]))
    return Journey(
        car_id=session[0].car_id,
        start=session[0].start,
        end=max(rec.end for rec in session),
        site_path=tuple(path),
        distance_km=dist,
    )


def reconstruct_journeys(
    pre: PreprocessResult, cells: dict[int, Cell]
) -> JourneyStats:
    """Reconstruct every car's journeys from its network sessions."""
    journeys: list[Journey] = []
    stationary = 0
    for car_id in pre.truncated.car_ids():
        for session in pre.network_sessions(car_id):
            journey = journey_from_session(session, cells)
            if journey is None:
                stationary += 1
            else:
                journeys.append(journey)
    return JourneyStats(journeys=journeys, n_stationary_sessions=stationary)


def commute_peak_shares(stats: JourneyStats, clock: StudyClock) -> tuple[float, float]:
    """Fraction of journeys departing in the morning (6-10) and evening
    (15-19) commute windows."""
    if not stats.journeys:
        return 0.0, 0.0
    hours = stats.departure_hour_histogram(clock)
    total = hours.sum()
    return float(hours[6:10].sum() / total), float(hours[15:19].sum() / total)
