"""Multi-process map-reduce analysis over ``.cdrz`` shard directories.

The paper's dataset — 1.1 billion CDRs from a million cars over 90 days —
is embarrassingly parallel on disk: :func:`repro.cdr.store.write_sharded_cdrz`
lays a trace out as ``shard-NNNNN.cdrz`` files that together form one
globally start-sorted row stream.  :func:`analyze_shards` fans the
out-of-core streaming pass (:class:`repro.core.streaming.StreamingAnalyzer`)
across worker processes, one *shard* at a time:

**Map.**  Workers claim shard indices from the pool queue.  Each shard is
consumed with ``consume_columnar`` under bounded memory (one chunk of
memory-mapped pages at a time) by a fresh analyzer in mergeable mode
(``quantile_mode="histogram"``, ``track_partials=True``), and the resulting
:class:`~repro.core.streaming.StreamingPartial` — a pure function of that
shard's bytes — is shipped back to the parent.

**Reduce.**  The parent folds the partials with
:meth:`~repro.core.streaming.StreamingAnalyzer.absorb_partial` in *shard
index order*, whatever order workers finished in.  Because every partial
depends only on its shard and the fold order is fixed, the reduced result
is bit-identical for any worker count (including ``workers=1``, which runs
the same per-shard fold inline with no pool).  Counts, histogram bins,
HyperLogLog registers and the per-day estimates merge exactly; the
histogram quantiles are exact to ``quantile_bin_s / 2``; the float sums
are deterministic and agree with a serial pass to reassociation precision.
The parity suite in ``tests/core/test_mapreduce.py`` asserts all of this.

Timing deliberately lives in ``benchmarks/`` (library code takes no
wall-clock readings); this module reports structural stats plus peak RSS.
"""

from __future__ import annotations

import multiprocessing
import sys
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.algorithms.timebins import StudyClock
from repro.cdr.store import DEFAULT_CHUNK_ROWS, iter_cdrz_chunks, resolve_shards
from repro.core.busy import BusySchedule
from repro.core.fused import (
    FusedEngine,
    FusedPartial,
    FusedReport,
    finalize_fused,
)
from repro.core.preprocess import PreprocessConfig
from repro.core.streaming import (
    StreamingAnalyzer,
    StreamingPartial,
    StreamingResult,
)
from repro.network.cells import Cell

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]


@dataclass(frozen=True)
class MapSpec:
    """Everything a map worker needs to turn a shard index into a partial."""

    shards: tuple[Path, ...]
    clock: StudyClock
    truncate_s: float
    hll_precision: int
    quantile_bin_s: float
    chunk_rows: int


@dataclass(frozen=True)
class MapReduceStats:
    """Run facts reported alongside the reduced :class:`StreamingResult`."""

    n_shards: int
    n_empty_shards: int
    n_records: int
    n_ghosts_dropped: int
    workers: int
    peak_rss_bytes: int


#: Per-process map spec.  Under the fork start method the parent fills it
#: before the pool starts and children inherit it for free; under spawn
#: each worker fills its own copy in :func:`_init_worker`.
_WORKER_SPEC: MapSpec | None = None


def _init_worker(spec: MapSpec) -> None:
    """Spawn-path initializer: install the pickled map spec."""
    global _WORKER_SPEC
    _WORKER_SPEC = spec


def map_shard(spec: MapSpec, index: int) -> StreamingPartial:
    """Map one shard to its accumulator partial (pure in the shard bytes)."""
    analyzer = StreamingAnalyzer(
        spec.clock,
        truncate_s=spec.truncate_s,
        hll_precision=spec.hll_precision,
        quantile_mode="histogram",
        quantile_bin_s=spec.quantile_bin_s,
        track_partials=True,
    )
    for chunk in iter_cdrz_chunks(spec.shards[index], chunk_rows=spec.chunk_rows):
        analyzer.consume_columnar(chunk)
    return analyzer.export_partial()


def _map_indexed(index: int) -> tuple[int, StreamingPartial]:
    """Worker body: claim one shard index, return ``(index, partial)``."""
    spec = _WORKER_SPEC
    if spec is None:
        raise RuntimeError("map worker used before initialization")
    return index, map_shard(spec, index)


def peak_rss_bytes() -> int:
    """Max resident set size so far, over this process and reaped children.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; returns 0 where the
    ``resource`` module is unavailable.
    """
    if resource is None:  # pragma: no cover
        return 0
    scale = 1 if sys.platform == "darwin" else 1024
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(max(own, children)) * scale


def _map_parallel(spec: MapSpec, n_workers: int) -> dict[int, StreamingPartial]:
    """Fan the shard indices over a process pool; collect partials by index.

    ``imap_unordered`` lets fast shards return while slow ones run —
    completion order is nondeterministic, which is why the caller folds by
    index, never by arrival.
    """
    global _WORKER_SPEC
    methods = multiprocessing.get_all_start_methods()
    use_fork = "fork" in methods
    ctx = multiprocessing.get_context("fork" if use_fork else "spawn")
    initializer: Callable[[MapSpec], None] | None
    initargs: tuple[MapSpec, ...]
    if use_fork:
        # Children inherit the parent's spec through fork; nothing pickled.
        _WORKER_SPEC = spec
        initializer, initargs = None, ()
    else:
        initializer, initargs = _init_worker, (spec,)
    indexed: dict[int, StreamingPartial] = {}
    try:
        with ctx.Pool(
            processes=n_workers, initializer=initializer, initargs=initargs
        ) as pool:
            for index, partial in pool.imap_unordered(
                _map_indexed, range(len(spec.shards)), chunksize=1
            ):
                indexed[index] = partial
    finally:
        _WORKER_SPEC = None
    return indexed


def analyze_shards(
    source: str | Path | Sequence[str | Path],
    clock: StudyClock,
    *,
    workers: int = 1,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    truncate_s: float = 600.0,
    hll_precision: int = 12,
    quantile_bin_s: float = 1.0,
) -> tuple[StreamingResult, MapReduceStats]:
    """Run the streaming analysis over shards with ``workers`` processes.

    ``source`` is anything :func:`repro.cdr.store.resolve_shards` accepts —
    a shard directory, one ``.cdrz`` file, or an explicit path list (kept
    in the given order, which must be global start order).  The result is
    identical for any ``workers`` value; see the module docstring for the
    determinism argument.  Empty shards reduce as no-ops and are counted
    in the returned stats.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    shards = tuple(resolve_shards(source))
    spec = MapSpec(
        shards=shards,
        clock=clock,
        truncate_s=truncate_s,
        hll_precision=hll_precision,
        quantile_bin_s=quantile_bin_s,
        chunk_rows=chunk_rows,
    )
    n_workers = min(workers, len(shards))
    if n_workers <= 1:
        indexed = {i: map_shard(spec, i) for i in range(len(shards))}
    else:
        indexed = _map_parallel(spec, n_workers)

    reducer = StreamingAnalyzer(
        clock,
        truncate_s=truncate_s,
        hll_precision=hll_precision,
        quantile_mode="histogram",
        quantile_bin_s=quantile_bin_s,
    )
    n_empty = 0
    for index in range(len(shards)):
        partial = indexed[index]
        if partial.n_records == 0 and partial.n_ghosts == 0:
            n_empty += 1
        reducer.absorb_partial(partial)
    result = reducer.finalize()
    stats = MapReduceStats(
        n_shards=len(shards),
        n_empty_shards=n_empty,
        n_records=result.n_records,
        n_ghosts_dropped=result.n_ghosts_dropped,
        workers=n_workers,
        peak_rss_bytes=peak_rss_bytes(),
    )
    return result, stats


# -- fused Section-4 map-reduce -------------------------------------------


@dataclass(frozen=True)
class FusedMapSpec:
    """Everything a fused map worker needs for one shard.

    Shipped to workers whole (inherited through fork, pickled under
    spawn), so the optional :class:`~repro.core.busy.BusySchedule` and
    cell directory must be picklable — both are plain data.
    """

    shards: tuple[Path, ...]
    clock: StudyClock
    config: PreprocessConfig
    schedule: BusySchedule | None
    cells: dict[int, Cell] | None
    min_records: int
    chunk_rows: int


#: Per-process fused map spec, mirroring :data:`_WORKER_SPEC`.
_FUSED_SPEC: FusedMapSpec | None = None


def _init_fused_worker(spec: FusedMapSpec) -> None:
    """Spawn-path initializer: install the pickled fused map spec."""
    global _FUSED_SPEC
    _FUSED_SPEC = spec


def map_shard_fused(spec: FusedMapSpec, index: int) -> FusedPartial | None:
    """Map one shard through the fused engine (pure in the shard bytes).

    Returns ``None`` for a shard with no chunks at all — the engine never
    binds a vocabulary, and the reducer skips it as empty.
    """
    engine = FusedEngine(
        spec.clock,
        spec.config,
        schedule=spec.schedule,
        cells=spec.cells,
        min_records=spec.min_records,
        track_partials=True,
    )
    consumed = False
    for chunk in iter_cdrz_chunks(spec.shards[index], chunk_rows=spec.chunk_rows):
        engine.consume(chunk)
        consumed = True
    if not consumed:
        return None
    return engine.export_partial()


def _map_fused_indexed(index: int) -> tuple[int, FusedPartial | None]:
    """Fused worker body: claim one shard index, return its partial."""
    spec = _FUSED_SPEC
    if spec is None:
        raise RuntimeError("fused map worker used before initialization")
    return index, map_shard_fused(spec, index)


def _map_fused_parallel(
    spec: FusedMapSpec, n_workers: int, indices: Sequence[int]
) -> dict[int, FusedPartial | None]:
    """Fan the given shard indices over a pool; collect partials by index."""
    global _FUSED_SPEC
    methods = multiprocessing.get_all_start_methods()
    use_fork = "fork" in methods
    ctx = multiprocessing.get_context("fork" if use_fork else "spawn")
    initializer: Callable[[FusedMapSpec], None] | None
    initargs: tuple[FusedMapSpec, ...]
    if use_fork:
        _FUSED_SPEC = spec
        initializer, initargs = None, ()
    else:
        initializer, initargs = _init_fused_worker, (spec,)
    indexed: dict[int, FusedPartial | None] = {}
    try:
        with ctx.Pool(
            processes=n_workers, initializer=initializer, initargs=initargs
        ) as pool:
            for index, partial in pool.imap_unordered(
                _map_fused_indexed, indices, chunksize=1
            ):
                indexed[index] = partial
    finally:
        _FUSED_SPEC = None
    return indexed


def map_shards_fused(
    spec: FusedMapSpec,
    *,
    indices: Sequence[int] | None = None,
    workers: int = 1,
) -> dict[int, FusedPartial | None]:
    """Map shard indices to fused partials with ``workers`` processes.

    The subset entry point of the fused map phase: callers that already
    hold partials for most shards — the analysis service folding one new
    day of data into cached state — pass just the missing ``indices`` and
    pay only for those sweeps.  Each partial is a pure function of its
    shard's bytes, so a subset map composes bit-identically with cached
    partials under the usual index-ordered fold.  ``indices`` defaults to
    every shard; order does not matter (the result is keyed by index).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    wanted = list(range(len(spec.shards))) if indices is None else list(indices)
    for index in wanted:
        if not 0 <= index < len(spec.shards):
            raise ValueError(
                f"shard index {index} out of range for {len(spec.shards)} shards"
            )
    n_workers = min(workers, len(wanted))
    if n_workers <= 1:
        return {i: map_shard_fused(spec, i) for i in wanted}
    return _map_fused_parallel(spec, n_workers, wanted)


def analyze_shards_fused(
    source: str | Path | Sequence[str | Path],
    clock: StudyClock,
    *,
    schedule: BusySchedule | None = None,
    cells: dict[int, Cell] | None = None,
    workers: int = 1,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    config: PreprocessConfig | None = None,
    min_records: int = 2,
) -> tuple[FusedReport, MapReduceStats]:
    """Run every Section 4 analysis over shards with ``workers`` processes.

    The fused counterpart of :func:`analyze_shards`: workers stream each
    shard through one :class:`~repro.core.fused.FusedEngine` in
    partial-tracking mode, and the parent folds the returned
    :class:`~repro.core.fused.FusedPartial` bundles in *shard index order*
    before closing them with :func:`~repro.core.fused.finalize_fused`.
    Presence, days-on-network, connect time, handovers, carrier reach and
    the ghost count reduce *exactly* — bit-identical to a single serial
    engine (and to the record-based references) at any worker count — while
    the per-car busy tallies and per-carrier time sums merge to
    reassociation precision, the same contract :func:`analyze_shards`
    documents.  ``exposure``/``segmentation``/``handovers`` are ``None``
    unless ``schedule``/``cells`` are given, mirroring the pipeline.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    shards = tuple(resolve_shards(source))
    spec = FusedMapSpec(
        shards=shards,
        clock=clock,
        config=config or PreprocessConfig(),
        schedule=schedule,
        cells=cells,
        min_records=min_records,
        chunk_rows=chunk_rows,
    )
    n_workers = min(workers, len(shards))
    indexed = map_shards_fused(spec, workers=n_workers)

    merged: FusedPartial | None = None
    n_empty = 0
    for index in range(len(shards)):
        partial = indexed[index]
        if partial is None:
            n_empty += 1
            continue
        if partial.n_records == 0 and partial.n_ghosts == 0:
            n_empty += 1
        if merged is None:
            merged = partial
        else:
            merged.absorb_partial(partial)
    if merged is None:
        raise ValueError(
            "no rows in any shard; the fused engine needs at least one chunk"
        )
    report = finalize_fused(merged, clock)
    stats = MapReduceStats(
        n_shards=len(shards),
        n_empty_shards=n_empty,
        n_records=merged.n_records,
        n_ghosts_dropped=merged.n_ghosts,
        workers=n_workers,
        peak_rss_bytes=peak_rss_bytes(),
    )
    return report, stats
