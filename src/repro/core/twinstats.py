"""Calibration-target extraction on fused partials (trace twinning).

The twinning loop (:mod:`repro.twin`) compares traces through a handful of
summary statistics.  Three of them — the diurnal start-hour shape, the
session-duration histogram and the aggregate-session table that inter-
arrival gaps are read from — are not part of the Section 4
:class:`~repro.core.fused.FusedReport`, so this module adds one more
kernel in the same mold: consume :class:`ChunkIntermediates`, export a
picklable partial, absorb later shards exactly.

Merge discipline (the RL010 contract):

* ``hour_counts`` and ``duration_bins`` are integer counts — shard sums
  are exact and order-independent.
* ``sessions`` reuses :class:`~repro.core.fused.ConnectPartial` with a
  positive ``join_gap_s``: the chain tables weld across shard boundaries
  with the same compare/max walk the connect-time kernel uses, so the
  aggregate-session table — and every gap read from it — is bit-identical
  at any chunk size and worker count.

The quantile read-out is histogram-based: with the default 1-second bins
a duration quantile is exact to half a bin, the same bound
:mod:`repro.core.mapreduce` documents for its streaming quantiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.timebins import DAY, StudyClock
from repro.core.fused import ChunkIntermediates, ConnectKernel, ConnectPartial
from repro.core.preprocess import PreprocessConfig

#: Hours in a diurnal profile.
N_HOURS = 24

#: Default histogram bin width for session durations, seconds.
DEFAULT_DURATION_BIN_S = 1.0


@dataclass
class TwinStatsPartial:
    """One shard's twin-statistic contribution, exactly mergeable."""

    #: Raw rows consumed, before ghost dropping (matches the service's
    #: trace-level record count).
    n_records: int
    #: Connection starts per hour of day, in-study rows only.
    hour_counts: npt.NDArray[np.int64]
    #: Truncated-duration histogram; bin ``k`` covers
    #: ``[k * bin_s, (k + 1) * bin_s)`` and the last bin is closed.
    duration_bins: npt.NDArray[np.int64]
    bin_s: float
    #: Aggregate-session endpoint table (gap-joined truncated chains).
    sessions: ConnectPartial

    def absorb_partial(self, partial: "TwinStatsPartial") -> None:
        """Fold a later shard's statistics into this one (exact)."""
        if partial.bin_s != self.bin_s or len(partial.duration_bins) != len(
            self.duration_bins
        ):
            raise ValueError(
                "cannot merge twin-stat partials with different duration "
                "histograms"
            )
        self.n_records = self.n_records + partial.n_records
        self.hour_counts = self.hour_counts + partial.hour_counts
        self.duration_bins = self.duration_bins + partial.duration_bins
        self.sessions.absorb_partial(partial.sessions)


class TwinStatsKernel:
    """Twin-statistic kernel over shared :class:`ChunkIntermediates`.

    Follows the :class:`~repro.core.fused.FusedAnalysis` protocol —
    ``consume`` plus ``export_partial`` — so it composes with the fused
    sweep's chunking and the cross-shard fold unchanged.
    """

    def __init__(
        self,
        car_ids: tuple[str, ...],
        clock: StudyClock,
        *,
        session_gap_s: float | None = None,
        truncate_s: float | None = None,
        bin_s: float = DEFAULT_DURATION_BIN_S,
    ) -> None:
        defaults = PreprocessConfig()
        if session_gap_s is None:
            session_gap_s = defaults.session_gap_s
        if truncate_s is None:
            truncate_s = defaults.truncate_s
        if bin_s <= 0:
            raise ValueError(f"bin_s must be positive, got {bin_s}")
        self.clock = clock
        self._bin_s = bin_s
        self._n_bins = int(np.ceil(truncate_s / bin_s)) + 1
        self._n_records = 0
        self._hour_counts = np.zeros(N_HOURS, dtype=np.int64)
        self._duration_bins = np.zeros(self._n_bins, dtype=np.int64)
        self._sessions = ConnectKernel(
            car_ids,
            truncated=True,
            track_partials=True,
            join_gap_s=session_gap_s,
        )

    def consume(self, inter: ChunkIntermediates) -> None:
        """Fold one chunk's rows into the counters and session chains."""
        self._n_records += inter.n + inter.n_ghosts
        if inter.n:
            starts = inter.start[inter.in_study]
            hours = np.floor_divide(np.mod(starts, DAY), 3600.0).astype(
                np.int64
            )
            self._hour_counts += np.bincount(hours, minlength=N_HOURS).astype(
                np.int64
            )
            idx = np.minimum(
                np.floor_divide(inter.trunc_duration, self._bin_s).astype(
                    np.int64
                ),
                self._n_bins - 1,
            )
            self._duration_bins += np.bincount(
                idx, minlength=self._n_bins
            ).astype(np.int64)
        self._sessions.consume(inter)

    def export_partial(self) -> TwinStatsPartial:
        """Ship this shard's counters and session table for folding."""
        return TwinStatsPartial(
            n_records=self._n_records,
            hour_counts=self._hour_counts.copy(),
            duration_bins=self._duration_bins.copy(),
            bin_s=self._bin_s,
            sessions=self._sessions.export_partial(),
        )


def diurnal_shape(partial: TwinStatsPartial) -> npt.NDArray[np.float64]:
    """Hour-of-day start fractions (sums to 1; zeros on an empty trace)."""
    total = int(partial.hour_counts.sum())
    if total == 0:
        return np.zeros(N_HOURS)
    out: npt.NDArray[np.float64] = partial.hour_counts / float(total)
    return out


def duration_quantile(partial: TwinStatsPartial, q: float) -> float:
    """The ``q`` (0..1) duration quantile, exact to half a histogram bin.

    Reads the inverted-CDF order statistic out of the merged histogram and
    returns the containing bin's midpoint — deterministic at any shard
    split because the counts merge exactly.
    """
    if not 0 <= q <= 1:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    counts = partial.duration_bins
    n = int(counts.sum())
    if n == 0:
        return 0.0
    rank = int(np.floor(q * (n - 1)))
    cum = np.cumsum(counts)
    k = int(np.searchsorted(cum, rank + 1))
    return (k + 0.5) * partial.bin_s


def session_gaps(
    sessions: ConnectPartial,
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.float64]]:
    """Per-car inter-session gaps from a gap-joined chain table.

    Returns ``(car codes, gap seconds)`` over consecutive same-car session
    pairs.  The table is grouped by car and chronological within car, so a
    simple shifted comparison finds every pair; by construction each gap
    exceeds the table's ``join_gap_s`` (anything closer was welded), so
    all gaps are positive.
    """
    if len(sessions.car) < 2:
        return np.zeros(0, dtype=np.int64), np.zeros(0)
    same = sessions.car[1:] == sessions.car[:-1]
    gaps: npt.NDArray[np.float64] = (sessions.start[1:] - sessions.cm[:-1])[
        same
    ]
    cars: npt.NDArray[np.int64] = sessions.car[1:][same]
    return cars, gaps
