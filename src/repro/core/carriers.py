"""Frequency band (carrier) usage (Section 4.6, Table 3).

Two statistics per carrier C1..C5: the percentage of cars that connected to
the carrier at least once over the study, and the percentage of total
connection time spent on it.  The paper finds C1-C4 used by 80-99% of cars
with C3+C4 carrying ~75% of connected time, and C5 essentially unused — the
legacy-capability story of long-lived car modems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.records import CDRBatch

#: Canonical carrier order for reporting.
CARRIER_ORDER = ("C1", "C2", "C3", "C4", "C5")


@dataclass(frozen=True)
class CarrierUsage:
    """Table 3: per-carrier reach and time share."""

    #: Fraction of cars that used each carrier at least once.
    cars_fraction: dict[str, float]
    #: Fraction of total connection time spent on each carrier.
    time_fraction: dict[str, float]
    n_cars: int
    total_time_s: float

    def top_carriers_by_time(self, n: int = 2) -> list[str]:
        """Carrier names ordered by descending time share, first ``n``."""
        ranked = sorted(
            self.time_fraction, key=lambda c: self.time_fraction[c], reverse=True
        )
        return ranked[:n]

    def combined_time_share(self, carriers: tuple[str, ...]) -> float:
        """Total time share of the given carriers (paper: C3+C4 ~ 75%)."""
        return sum(self.time_fraction.get(c, 0.0) for c in carriers)


def carrier_usage(
    batch: CDRBatch, carriers: tuple[str, ...] = CARRIER_ORDER
) -> CarrierUsage:
    """Compute Table 3 from a (cleaned) batch.

    Time shares use reported (possibly truncated) durations; carriers never
    observed in the batch report zero for both statistics, so the table
    always covers the requested carrier list.
    """
    cars_per_carrier: dict[str, set[str]] = {c: set() for c in carriers}
    time_per_carrier: dict[str, float] = {c: 0.0 for c in carriers}
    all_cars: set[str] = set()
    total_time = 0.0
    for rec in batch:
        all_cars.add(rec.car_id)
        total_time += rec.duration
        if rec.carrier in cars_per_carrier:
            cars_per_carrier[rec.carrier].add(rec.car_id)
            time_per_carrier[rec.carrier] += rec.duration
    n_cars = max(len(all_cars), 1)
    return CarrierUsage(
        cars_fraction={c: len(cars_per_carrier[c]) / n_cars for c in carriers},
        time_fraction={
            c: (time_per_carrier[c] / total_time if total_time > 0 else 0.0)
            for c in carriers
        },
        n_cars=len(all_cars),
        total_time_s=total_time,
    )


def carrier_usage_columnar(
    col: ColumnarCDRBatch, carriers: tuple[str, ...] = CARRIER_ORDER
) -> CarrierUsage:
    """Vectorized :func:`carrier_usage` over a columnar batch.

    Car reach for every carrier comes from one ``bincount`` over packed
    ``(carrier, car)`` codes — a single O(n) pass replaces the per-carrier
    mask + ``unique`` scans, which made the old loop O(n_carriers × n).
    Per-carrier time sums still run as ``np.cumsum`` over each carrier's
    rows in batch order (a stable sort groups rows per carrier without
    reordering within one), which accumulates floats in exactly the
    sequence the reference's ``+=`` loop does, so the time shares are
    bit-identical.
    """
    n = len(col)
    total_time = float(np.cumsum(col.duration)[-1]) if n else 0.0
    n_cars_total = int(np.unique(col.car_code).size)
    n_cars = max(n_cars_total, 1)
    cars_fraction: dict[str, float] = {c: 0.0 for c in carriers}
    time_fraction: dict[str, float] = {c: 0.0 for c in carriers}
    n_carrier_vocab = len(col.carriers)
    if n and n_carrier_vocab:
        n_car_vocab = max(len(col.car_ids), 1)
        packed = col.carrier_code.astype(np.int64) * n_car_vocab + col.car_code
        pair_counts = np.bincount(
            packed, minlength=n_carrier_vocab * n_car_vocab
        )
        reach = (pair_counts.reshape(n_carrier_vocab, n_car_vocab) > 0).sum(
            axis=1
        )
        order = np.argsort(col.carrier_code, kind="stable")
        dur_sorted = col.duration[order]
        counts = np.bincount(col.carrier_code, minlength=n_carrier_vocab)
        bounds = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64))
        )
        for code, name in enumerate(col.carriers):
            if name not in cars_fraction:
                continue
            a, b = int(bounds[code]), int(bounds[code + 1])
            if a == b:
                continue
            t = float(np.cumsum(dur_sorted[a:b])[-1])
            cars_fraction[name] = int(reach[code]) / n_cars
            time_fraction[name] = t / total_time if total_time > 0 else 0.0
    return CarrierUsage(
        cars_fraction=cars_fraction,
        time_fraction=time_fraction,
        n_cars=n_cars_total,
        total_time_s=total_time,
    )
