"""Macro-level temporal behaviour: total time on the network (Figure 3).

Per car, the union of its connection intervals as a percentage of the whole
study period — computed twice, once from reported durations and once with the
600-second truncation.  The paper reports means of ~8% (full) and ~4%
(truncated) and tail percentiles (99.5th at 27% / 15%), and concludes the
window of opportunity for large downloads is small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.intervals import total_duration
from repro.algorithms.segments import segmented_cummax
from repro.algorithms.stats import percentile
from repro.algorithms.timebins import StudyClock
from repro.cdr.columnar import ColumnarCDRBatch
from repro.core.preprocess import PreprocessResult


@dataclass(frozen=True)
class ConnectTimeResult:
    """Per-car connected-time shares, full vs truncated.

    ``full_share`` and ``truncated_share`` are aligned arrays over the same
    cars (sorted by car id), each entry the fraction of the study period the
    car was connected.
    """

    car_ids: list[str]
    full_share: npt.NDArray[np.float64]
    truncated_share: npt.NDArray[np.float64]

    @property
    def mean_full(self) -> float:
        """Mean share of study time connected, reported durations."""
        return float(self.full_share.mean())

    @property
    def mean_truncated(self) -> float:
        """Mean share of study time connected, durations capped at 600 s."""
        return float(self.truncated_share.mean())

    def tail(self, q: float = 99.5) -> tuple[float, float]:
        """The ``q``-th percentile of (full, truncated) shares."""
        return (
            percentile(self.full_share, q),
            percentile(self.truncated_share, q),
        )

    def hours_per_day(self, clock: StudyClock) -> tuple[float, float]:
        """Mean connected hours per day implied by the two means."""
        return (self.mean_full * 24.0, self.mean_truncated * 24.0)


def connect_time_analysis(
    pre: PreprocessResult, clock: StudyClock
) -> ConnectTimeResult:
    """Figure 3: per-car connected time as a fraction of the study period.

    Overlapping records of one car (parallel bearers, artifacts) count once:
    shares come from the union of intervals, not the sum of durations.
    """
    car_ids = sorted(set(pre.full.by_car()) | set(pre.truncated.by_car()))
    duration = float(clock.duration)
    full = np.empty(len(car_ids))
    trunc = np.empty(len(car_ids))
    full_by_car = pre.full.by_car()
    trunc_by_car = pre.truncated.by_car()
    for i, car in enumerate(car_ids):
        full[i] = total_duration(
            rec.interval for rec in full_by_car.get(car, [])
        ) / duration
        trunc[i] = total_duration(
            rec.interval for rec in trunc_by_car.get(car, [])
        ) / duration
    return ConnectTimeResult(car_ids=car_ids, full_share=full, truncated_share=trunc)


def _union_totals(
    col: ColumnarCDRBatch,
) -> tuple[list[str], npt.NDArray[np.float64]]:
    """Per-car union-of-intervals connected seconds, cars sorted by id.

    The grouped high-water-mark scan: with each car's rows contiguous and
    chronological, a segmented running maximum of the record ends (``cm``)
    identifies union segments — a row opens a new segment exactly when its
    start exceeds the running maximum so far, the same ``start > end`` test
    the reference's interval merge applies.  Segment durations then
    accumulate per car in segment order, matching the reference's
    sequential sum.
    """
    present = col.present_car_codes()
    car_ids = [col.car_ids[int(c)] for c in present]
    totals = np.zeros(len(car_ids))
    n = len(col)
    if n == 0:
        return car_ids, totals
    order, starts = col.car_spans()
    s = col.start[order]
    e = s + col.duration[order]
    is_start = np.zeros(n, dtype=np.bool_)
    is_start[starts] = True
    cm = segmented_cummax(e, is_start)
    new_seg = is_start.copy()
    new_seg[1:] |= ~is_start[1:] & (s[1:] > cm[:-1])
    seg_first = np.flatnonzero(new_seg)
    seg_last = np.append(seg_first[1:] - 1, n - 1)
    seg_dur = cm[seg_last] - s[seg_first]
    car_of_seg = np.searchsorted(present, col.car_code[order][seg_first])
    np.add.at(totals, car_of_seg, seg_dur)
    return car_ids, totals


def connect_time_analysis_columnar(
    pre: PreprocessResult, clock: StudyClock
) -> ConnectTimeResult:
    """Vectorized :func:`connect_time_analysis` over the columnar views.

    Bit-identical to the reference: union segments are determined by the
    same comparisons, segment durations are the same subtractions, and the
    per-car sums run in the same order.
    """
    duration = float(clock.duration)
    car_ids, full_totals = _union_totals(pre.full.columnar())
    _, trunc_totals = _union_totals(pre.truncated.columnar())
    return ConnectTimeResult(
        car_ids=car_ids,
        full_share=full_totals / duration,
        truncated_share=trunc_totals / duration,
    )


def cell_connection_durations(
    pre: PreprocessResult, truncated: bool
) -> npt.NDArray[np.float64]:
    """Durations of individual per-cell connections (Figure 9's sample).

    The unit here is the raw record: one car's connection to one cell.  The
    paper reports a median of 105 s, mean 625 s full / 238 s truncated.
    """
    batch = pre.truncated if truncated else pre.full
    return np.asarray([rec.duration for rec in batch], dtype=float)
