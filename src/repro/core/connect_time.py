"""Macro-level temporal behaviour: total time on the network (Figure 3).

Per car, the union of its connection intervals as a percentage of the whole
study period — computed twice, once from reported durations and once with the
600-second truncation.  The paper reports means of ~8% (full) and ~4%
(truncated) and tail percentiles (99.5th at 27% / 15%), and concludes the
window of opportunity for large downloads is small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.intervals import total_duration
from repro.algorithms.stats import percentile
from repro.algorithms.timebins import StudyClock
from repro.core.preprocess import PreprocessResult


@dataclass(frozen=True)
class ConnectTimeResult:
    """Per-car connected-time shares, full vs truncated.

    ``full_share`` and ``truncated_share`` are aligned arrays over the same
    cars (sorted by car id), each entry the fraction of the study period the
    car was connected.
    """

    car_ids: list[str]
    full_share: np.ndarray
    truncated_share: np.ndarray

    @property
    def mean_full(self) -> float:
        """Mean share of study time connected, reported durations."""
        return float(self.full_share.mean())

    @property
    def mean_truncated(self) -> float:
        """Mean share of study time connected, durations capped at 600 s."""
        return float(self.truncated_share.mean())

    def tail(self, q: float = 99.5) -> tuple[float, float]:
        """The ``q``-th percentile of (full, truncated) shares."""
        return (
            percentile(self.full_share, q),
            percentile(self.truncated_share, q),
        )

    def hours_per_day(self, clock: StudyClock) -> tuple[float, float]:
        """Mean connected hours per day implied by the two means."""
        return (self.mean_full * 24.0, self.mean_truncated * 24.0)


def connect_time_analysis(
    pre: PreprocessResult, clock: StudyClock
) -> ConnectTimeResult:
    """Figure 3: per-car connected time as a fraction of the study period.

    Overlapping records of one car (parallel bearers, artifacts) count once:
    shares come from the union of intervals, not the sum of durations.
    """
    car_ids = sorted(set(pre.full.by_car()) | set(pre.truncated.by_car()))
    duration = float(clock.duration)
    full = np.empty(len(car_ids))
    trunc = np.empty(len(car_ids))
    full_by_car = pre.full.by_car()
    trunc_by_car = pre.truncated.by_car()
    for i, car in enumerate(car_ids):
        full[i] = total_duration(
            rec.interval for rec in full_by_car.get(car, [])
        ) / duration
        trunc[i] = total_duration(
            rec.interval for rec in trunc_by_car.get(car, [])
        ) / duration
    return ConnectTimeResult(car_ids=car_ids, full_share=full, truncated_share=trunc)


def cell_connection_durations(
    pre: PreprocessResult, truncated: bool
) -> np.ndarray:
    """Durations of individual per-cell connections (Figure 9's sample).

    The unit here is the raw record: one car's connection to one cell.  The
    paper reports a median of 105 s, mean 625 s full / 238 s truncated.
    """
    batch = pre.truncated if truncated else pre.full
    return np.asarray([rec.duration for rec in batch], dtype=float)
