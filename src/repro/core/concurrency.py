"""Per-cell concurrency of cars (Section 4.4, Figures 8 and 10).

The paper declares cars concurrent when their connections straddle the same
15-minute time bin — a deliberately coarse window because the projected
impact (overlapping large downloads) extends connections and shares
bandwidth.  Figure 8 renders a single cell's 24 hours of per-car connections;
Figure 10 overlays a week of per-bin concurrent-car counts on the cell's PRB
curve.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.intervals import Interval, concatenate_gaps
from repro.algorithms.timebins import BIN_SECONDS, BINS_PER_WEEK, DAY, WEEK, StudyClock
from repro.cdr.records import CDRBatch, ConnectionRecord


def car_sessions_in_cell(
    records: list[ConnectionRecord], session_gap_s: float = 30.0
) -> dict[str, list[Interval]]:
    """Per-car aggregated sessions within one cell's record list.

    Applies the paper's 30-second concatenation rule per car, so one car
    counts once per bin no matter how fragmented its radio connections are.
    """
    per_car: dict[str, list[Interval]] = {}
    for rec in records:
        per_car.setdefault(rec.car_id, []).append(rec.interval)
    return {
        car: concatenate_gaps(ivs, session_gap_s) for car, ivs in per_car.items()
    }


def concurrency_counts(
    records: list[ConnectionRecord], session_gap_s: float = 30.0
) -> Counter[int]:
    """Concurrent cars per absolute 15-minute bin for one cell's records."""
    counts: Counter[int] = Counter()
    for sessions in car_sessions_in_cell(records, session_gap_s).values():
        seen: set[int] = set()
        for iv in sessions:
            seen.update(iv.bins_straddled(BIN_SECONDS))
        for b in seen:
            counts[b] += 1
    return counts


@dataclass(frozen=True)
class CellTimeline:
    """One cell's car connections over a day window (Figure 8).

    ``car_intervals`` maps each car to its connection intervals clipped to
    the window; ``concurrency`` counts concurrent cars per 15-minute bin of
    the window.
    """

    cell_id: int
    window_start: float
    window_end: float
    car_intervals: dict[str, list[Interval]]
    concurrency: npt.NDArray[np.int64]

    @property
    def n_cars(self) -> int:
        """Distinct cars connecting to the cell within the window."""
        return len(self.car_intervals)

    @property
    def max_concurrency(self) -> int:
        """Peak concurrent cars in any 15-minute bin of the window."""
        return int(self.concurrency.max()) if self.concurrency.size else 0

    @property
    def busiest_bin(self) -> int:
        """Window-relative index of the most concurrent 15-minute bin."""
        return int(self.concurrency.argmax()) if self.concurrency.size else 0


def cell_timeline(
    batch: CDRBatch, cell_id: int, start_day: int, n_days: int = 1
) -> CellTimeline:
    """Figure 8: per-car connections to one cell over ``n_days`` days."""
    if n_days <= 0:
        raise ValueError(f"n_days must be positive, got {n_days}")
    window_start = start_day * DAY
    window_end = window_start + n_days * DAY
    records = [
        rec
        for rec in batch.by_cell().get(cell_id, [])
        if rec.start < window_end and rec.end > window_start
    ]
    car_intervals: dict[str, list[Interval]] = {}
    for rec in records:
        clipped = rec.interval.clip(window_start, window_end)
        if clipped is not None:
            car_intervals.setdefault(rec.car_id, []).append(clipped)

    n_bins = int(n_days * DAY // BIN_SECONDS)
    concurrency = np.zeros(n_bins, dtype=np.int64)
    for intervals in car_intervals.values():
        seen: set[int] = set()
        for iv in concatenate_gaps(intervals, 30.0):
            seen.update(iv.bins_straddled(BIN_SECONDS))
        first_bin = int(window_start // BIN_SECONDS)
        for b in seen:
            rel = b - first_bin
            if 0 <= rel < n_bins:
                concurrency[rel] += 1
    return CellTimeline(
        cell_id=cell_id,
        window_start=window_start,
        window_end=window_end,
        car_intervals=car_intervals,
        concurrency=concurrency,
    )


def weekly_concurrency(
    records: list[ConnectionRecord],
    clock: StudyClock,
    session_gap_s: float = 30.0,
) -> npt.NDArray[np.float64]:
    """Mean concurrent cars per 15-minute bin of the week, 672 entries.

    Averages each hour-of-week bin's concurrent-car count over all complete
    weeks of the study, producing the per-cell vectors Figure 11 clusters
    (the paper's 96-bin day vectors are the same construction folded one
    step further; see :func:`fold_to_day`).
    """
    n_weeks = clock.duration // WEEK
    if n_weeks == 0:
        raise ValueError("study shorter than one week; cannot fold weekly")
    counts = concurrency_counts(records, session_gap_s)
    folded = np.zeros(BINS_PER_WEEK)
    bins_per_week = int(WEEK // BIN_SECONDS)
    offset_bins = clock.start_weekday * int(DAY // BIN_SECONDS)
    for b, count in counts.items():
        if b >= n_weeks * bins_per_week:
            continue  # ignore the trailing partial week
        folded[(b + offset_bins) % bins_per_week] += count
    return folded / n_weeks


def fold_to_day(weekly: npt.ArrayLike) -> npt.NDArray[np.float64]:
    """Collapse a 672-bin weekly vector to the 96-bin mean day."""
    w = np.asarray(weekly, dtype=float)
    if w.size != BINS_PER_WEEK:
        raise ValueError(f"expected {BINS_PER_WEEK} bins, got {w.size}")
    out: npt.NDArray[np.float64] = w.reshape(7, -1).mean(axis=0)
    return out
