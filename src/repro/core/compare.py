"""Comparing two analysis reports.

Operators run the paper's analysis repeatedly — month over month, region
against region, before and after a policy — and care about the deltas: did
connected time grow, did the busy-exposed tail move, did a new band take
traffic.  This module extracts the comparable headline metrics from two
:class:`~repro.core.pipeline.AnalysisReport` objects and renders the diff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import AnalysisReport


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric."""

    name: str
    a: float
    b: float
    #: Python format spec for rendering the values, e.g. ``".1%"``.
    fmt: str = ".3f"

    @property
    def delta(self) -> float:
        """Absolute change from A to B."""
        return self.b - self.a

    @property
    def relative(self) -> float | None:
        """Relative change, or ``None`` when A is zero."""
        if self.a == 0:
            return None
        return self.delta / self.a


def extract_metrics(report: AnalysisReport) -> dict[str, tuple[float, str]]:
    """The comparable headline metrics of one report, name -> (value, fmt)."""
    durations = np.asarray([r.duration for r in report.pre.truncated])
    rows = {r.weekday: r for r in report.weekday_rows}
    metrics: dict[str, tuple[float, str]] = {
        "cars observed": (float(report.presence.n_cars_total), ",.0f"),
        "cells ever used": (float(report.presence.n_cells_total), ",.0f"),
        "mean % cars per day": (rows["Overall"].car_mean, ".1%"),
        "Saturday % cars": (rows["Saturday"].car_mean, ".1%"),
        "connect share (full)": (report.connect_time.mean_full, ".2%"),
        "connect share (truncated)": (report.connect_time.mean_truncated, ".2%"),
        "cell-session median (s)": (float(np.median(durations)), ".0f"),
        "cars >50% busy time": (report.exposure.fraction_above(0.5), ".1%"),
        "rare cars (<=10 days)": (
            report.segmentation.row("Rare (<= 10 days)").total,
            ".1%",
        ),
        "C3+C4 time share": (
            report.carriers.combined_time_share(("C3", "C4")),
            ".1%",
        ),
    }
    if report.handovers is not None:
        metrics["handovers/session (median)"] = (report.handovers.median, ".0f")
        metrics["handovers/session (p90)"] = (
            report.handovers.percentile(90),
            ".0f",
        )
    return metrics


def compare_reports(a: AnalysisReport, b: AnalysisReport) -> list[MetricDelta]:
    """Deltas over the metrics both reports expose."""
    metrics_a = extract_metrics(a)
    metrics_b = extract_metrics(b)
    deltas: list[MetricDelta] = []
    for name, (value_a, fmt) in metrics_a.items():
        if name not in metrics_b:
            continue
        deltas.append(MetricDelta(name=name, a=value_a, b=metrics_b[name][0], fmt=fmt))
    return deltas


def format_comparison(
    deltas: list[MetricDelta], labels: tuple[str, str] = ("A", "B")
) -> str:
    """Text table of a report comparison."""
    name_width = max((len(d.name) for d in deltas), default=6)
    header = (
        f"{'metric':<{name_width}} | {labels[0]:>12} | {labels[1]:>12} | {'change':>8}"
    )
    lines = [header, "-" * len(header)]
    for d in deltas:
        rel = f"{d.relative:+.0%}" if d.relative is not None else "n/a"
        lines.append(
            f"{d.name:<{name_width}} | {format(d.a, d.fmt):>12} "
            f"| {format(d.b, d.fmt):>12} | {rel:>8}"
        )
    return "\n".join(lines)
