"""End-to-end analysis pipeline.

Runs every analysis of Section 4 over a raw CDR batch and collects the
results in an :class:`AnalysisReport` whose fields correspond one-to-one to
the paper's tables and figures.  Individual analyses remain importable on
their own; the pipeline just sequences them with shared preprocessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.timebins import StudyClock
from repro.cdr.records import CDRBatch
from repro.core.busy import (
    BusyExposure,
    BusySchedule,
    busy_exposure,
    busy_exposure_columnar,
)
from repro.core.carriers import CarrierUsage, carrier_usage, carrier_usage_columnar
from repro.core.clustering import BusyCellClusters, cluster_busy_cells
from repro.core.connect_time import (
    ConnectTimeResult,
    connect_time_analysis,
    connect_time_analysis_columnar,
)
from repro.core.fused import FusedEngine
from repro.core.handover import (
    HandoverStats,
    handover_analysis,
    handover_analysis_columnar,
)
from repro.core.preprocess import (
    PreprocessConfig,
    PreprocessResult,
    preprocess,
    preprocess_lazy,
)
from repro.core.presence import (
    DailyPresence,
    WeekdayRow,
    daily_presence,
    daily_presence_columnar,
    weekday_table,
)
from repro.core.segmentation import (
    CarSegmentation,
    days_on_network,
    days_on_network_columnar,
    segment_cars,
)
from repro.network.cells import Cell
from repro.network.load import CellLoadModel


@dataclass
class AnalysisReport:
    """All paper analyses computed over one data set.

    Field-to-paper mapping: ``presence`` -> Figure 2, ``weekday_rows`` ->
    Table 1, ``connect_time`` -> Figure 3, ``days`` -> Figure 6,
    ``segmentation`` -> Table 2, ``exposure`` -> Figure 7, ``clusters`` ->
    Figure 11, ``handovers`` -> Section 4.5, ``carriers`` -> Table 3.
    """

    pre: PreprocessResult
    presence: DailyPresence
    weekday_rows: list[WeekdayRow]
    connect_time: ConnectTimeResult
    days: dict[str, int]
    exposure: BusyExposure
    segmentation: CarSegmentation
    carriers: CarrierUsage
    handovers: HandoverStats | None = None
    clusters: BusyCellClusters | None = None
    notes: list[str] = field(default_factory=list)


class AnalysisPipeline:
    """Sequences the paper's analyses over a raw batch.

    Parameters
    ----------
    clock:
        Study calendar the batch was recorded against.
    load_model:
        Source of per-cell U_PRB series; drives busy-cell classification and
        the Figure 11 clustering.
    cells:
        Cell directory (``topology.cells``) for handover classification;
        omit to skip handover analysis.
    preprocess_config:
        Section 3 thresholds; defaults to the paper's values.
    """

    def __init__(
        self,
        clock: StudyClock,
        load_model: CellLoadModel,
        cells: dict[int, Cell] | None = None,
        preprocess_config: PreprocessConfig | None = None,
    ) -> None:
        self.clock = clock
        self.load_model = load_model
        self.cells = cells
        self.preprocess_config = preprocess_config or PreprocessConfig()
        # One schedule for the pipeline's lifetime: busy masks are a pure
        # function of the load model, and synthesizing the per-cell series
        # dominates a run's wall time, so the lazy cache must survive
        # across run() calls instead of being rebuilt for each one.
        self.schedule = BusySchedule.from_load_model(load_model)

    def run(
        self,
        batch: CDRBatch,
        with_clustering: bool = True,
        cluster_k: int = 2,
        exclude_loss_days: bool = False,
        engine: str = "vectorized",
    ) -> AnalysisReport:
        """Run every analysis and return the filled report.

        ``engine`` selects the implementation of the Section 4 analyses:
        ``"fused"`` makes one pass over the batch computing shared
        intermediates for every analysis at once
        (:class:`repro.core.fused.FusedEngine`) with lazy preprocessing —
        the fastest path; ``"vectorized"`` (default) runs the per-analysis
        columnar twins; ``"reference"`` runs the original record-based
        loops.  All three produce identical reports (the parity suites
        assert bit-equality), so the switch exists for verification and
        benchmarking, not correctness.

        ``exclude_loss_days`` runs the data-quality loss-day detector and
        removes flagged days from the Table 1 weekday statistics (the paper
        notes its three loss days "do not affect the overall results"; this
        makes that claim checkable).  Raises ``ValueError`` for a batch with
        no usable records: every downstream statistic would be undefined,
        and an explicit error beats a report full of NaNs.
        """
        if engine not in ("vectorized", "reference", "fused"):
            raise ValueError(
                "engine must be 'vectorized', 'reference' or 'fused', "
                f"got {engine!r}"
            )
        vectorized = engine == "vectorized"
        fused = engine == "fused"
        notes: list[str] = []
        # The fused path defers record materialization: its engine runs on
        # the columnar views alone, so building ConnectionRecord objects
        # would be pure overhead unless clustering or loss-day detection
        # asks for them later.
        if fused:
            pre = preprocess_lazy(batch, self.preprocess_config)
        else:
            pre = preprocess(batch, self.preprocess_config)
        if pre.n_kept == 0:
            raise ValueError(
                "batch contains no usable records after preprocessing "
                f"({pre.n_dropped_ghosts} ghost records dropped)"
            )
        notes.append(f"dropped {pre.n_dropped_ghosts} exactly-1-hour ghost records")

        fused_report = None
        if fused:
            fused_engine = FusedEngine(
                self.clock,
                self.preprocess_config,
                schedule=self.schedule,
                cells=self.cells,
            )
            fused_engine.consume(pre.columnar_full())
            fused_report = fused_engine.finalize()

        if fused_report is not None:
            presence = fused_report.presence
        elif vectorized:
            presence = daily_presence_columnar(pre.full.columnar(), self.clock)
        else:
            presence = daily_presence(pre.full, self.clock)
        excluded: tuple[int, ...] = ()
        if exclude_loss_days:
            from repro.cdr.quality import detect_loss_days

            findings, _ = detect_loss_days(pre.full, self.clock)
            excluded = tuple(f.day for f in findings)
            if excluded:
                notes.append(
                    f"excluded suspected data-loss days from Table 1: "
                    f"{list(excluded)}"
                )
        weekday_rows = weekday_table(presence, exclude_days=excluded)
        schedule = self.schedule
        if fused_report is not None:
            connect_time = fused_report.connect_time
            days = fused_report.days
            carriers = fused_report.carriers
            if fused_report.exposure is None or fused_report.segmentation is None:
                raise RuntimeError("fused pipeline ran without a schedule")
            exposure = fused_report.exposure
            segmentation = fused_report.segmentation
        else:
            if vectorized:
                connect_time = connect_time_analysis_columnar(pre, self.clock)
                days = days_on_network_columnar(pre.full.columnar(), self.clock)
                exposure = busy_exposure_columnar(
                    pre.truncated.columnar(), schedule
                )
                carriers = carrier_usage_columnar(pre.full.columnar())
            else:
                connect_time = connect_time_analysis(pre, self.clock)
                days = days_on_network(pre.full, self.clock)
                exposure = busy_exposure(pre.truncated, schedule)
                carriers = carrier_usage(pre.full)
            segmentation = segment_cars(days, exposure)

        handovers: HandoverStats | None = None
        if fused_report is not None:
            handovers = fused_report.handovers
        elif self.cells is not None:
            if vectorized:
                handovers = handover_analysis_columnar(pre, self.cells)
            else:
                handovers = handover_analysis(pre, self.cells)

        clusters: BusyCellClusters | None = None
        if with_clustering:
            try:
                clusters = cluster_busy_cells(
                    pre.truncated, self.load_model, self.clock, k=cluster_k
                )
            except ValueError as exc:
                notes.append(f"clustering skipped: {exc}")

        return AnalysisReport(
            pre=pre,
            presence=presence,
            weekday_rows=weekday_rows,
            connect_time=connect_time,
            days=days,
            exposure=exposure,
            segmentation=segmentation,
            carriers=carriers,
            handovers=handovers,
            clusters=clusters,
            notes=notes,
        )
