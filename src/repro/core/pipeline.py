"""End-to-end analysis pipeline.

Runs every analysis of Section 4 over a raw CDR batch and collects the
results in an :class:`AnalysisReport` whose fields correspond one-to-one to
the paper's tables and figures.  Individual analyses remain importable on
their own; the pipeline just sequences them with shared preprocessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.timebins import StudyClock
from repro.cdr.records import CDRBatch
from repro.core.busy import BusyExposure, BusySchedule, busy_exposure
from repro.core.carriers import CarrierUsage, carrier_usage
from repro.core.clustering import BusyCellClusters, cluster_busy_cells
from repro.core.connect_time import ConnectTimeResult, connect_time_analysis
from repro.core.handover import HandoverStats, handover_analysis
from repro.core.preprocess import PreprocessConfig, PreprocessResult, preprocess
from repro.core.presence import DailyPresence, WeekdayRow, daily_presence, weekday_table
from repro.core.segmentation import CarSegmentation, days_on_network, segment_cars
from repro.network.cells import Cell
from repro.network.load import CellLoadModel


@dataclass
class AnalysisReport:
    """All paper analyses computed over one data set.

    Field-to-paper mapping: ``presence`` -> Figure 2, ``weekday_rows`` ->
    Table 1, ``connect_time`` -> Figure 3, ``days`` -> Figure 6,
    ``segmentation`` -> Table 2, ``exposure`` -> Figure 7, ``clusters`` ->
    Figure 11, ``handovers`` -> Section 4.5, ``carriers`` -> Table 3.
    """

    pre: PreprocessResult
    presence: DailyPresence
    weekday_rows: list[WeekdayRow]
    connect_time: ConnectTimeResult
    days: dict[str, int]
    exposure: BusyExposure
    segmentation: CarSegmentation
    carriers: CarrierUsage
    handovers: HandoverStats | None = None
    clusters: BusyCellClusters | None = None
    notes: list[str] = field(default_factory=list)


class AnalysisPipeline:
    """Sequences the paper's analyses over a raw batch.

    Parameters
    ----------
    clock:
        Study calendar the batch was recorded against.
    load_model:
        Source of per-cell U_PRB series; drives busy-cell classification and
        the Figure 11 clustering.
    cells:
        Cell directory (``topology.cells``) for handover classification;
        omit to skip handover analysis.
    preprocess_config:
        Section 3 thresholds; defaults to the paper's values.
    """

    def __init__(
        self,
        clock: StudyClock,
        load_model: CellLoadModel,
        cells: dict[int, Cell] | None = None,
        preprocess_config: PreprocessConfig | None = None,
    ) -> None:
        self.clock = clock
        self.load_model = load_model
        self.cells = cells
        self.preprocess_config = preprocess_config or PreprocessConfig()

    def run(
        self,
        batch: CDRBatch,
        with_clustering: bool = True,
        cluster_k: int = 2,
        exclude_loss_days: bool = False,
    ) -> AnalysisReport:
        """Run every analysis and return the filled report.

        ``exclude_loss_days`` runs the data-quality loss-day detector and
        removes flagged days from the Table 1 weekday statistics (the paper
        notes its three loss days "do not affect the overall results"; this
        makes that claim checkable).  Raises ``ValueError`` for a batch with
        no usable records: every downstream statistic would be undefined,
        and an explicit error beats a report full of NaNs.
        """
        notes: list[str] = []
        pre = preprocess(batch, self.preprocess_config)
        if len(pre.full) == 0:
            raise ValueError(
                "batch contains no usable records after preprocessing "
                f"({pre.n_dropped_ghosts} ghost records dropped)"
            )
        notes.append(f"dropped {pre.n_dropped_ghosts} exactly-1-hour ghost records")

        presence = daily_presence(pre.full, self.clock)
        excluded: tuple[int, ...] = ()
        if exclude_loss_days:
            from repro.cdr.quality import detect_loss_days

            findings, _ = detect_loss_days(pre.full, self.clock)
            excluded = tuple(f.day for f in findings)
            if excluded:
                notes.append(
                    f"excluded suspected data-loss days from Table 1: "
                    f"{list(excluded)}"
                )
        weekday_rows = weekday_table(presence, exclude_days=excluded)
        connect_time = connect_time_analysis(pre, self.clock)
        days = days_on_network(pre.full, self.clock)

        schedule = BusySchedule.from_load_model(self.load_model)
        exposure = busy_exposure(pre.truncated, schedule)
        segmentation = segment_cars(days, exposure)
        carriers = carrier_usage(pre.full)

        handovers: HandoverStats | None = None
        if self.cells is not None:
            handovers = handover_analysis(pre, self.cells)

        clusters: BusyCellClusters | None = None
        if with_clustering:
            try:
                clusters = cluster_busy_cells(
                    pre.truncated, self.load_model, self.clock, k=cluster_k
                )
            except ValueError as exc:
                notes.append(f"clustering skipped: {exc}")

        return AnalysisReport(
            pre=pre,
            presence=presence,
            weekday_rows=weekday_rows,
            connect_time=connect_time,
            days=days,
            exposure=exposure,
            segmentation=segmentation,
            carriers=carriers,
            handovers=handovers,
            clusters=clusters,
            notes=notes,
        )
