"""Week-over-week behavioural stability.

Section 3 asserts the 90-day window is "long enough to be representative as
a predictor"; Section 4.2's matrices show why — week after week, the same
cells darken.  This module quantifies that: for each car, the similarity of
its weekly presence vectors across week pairs (Jaccard on the 168 hour
cells), and for the fleet, how stability distributes.  High-stability cars
are the predictable ones every management policy in the paper leans on;
the distribution's spread is the honest error bar on "predictable".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.algorithms.timebins import StudyClock
from repro.cdr.records import CDRBatch
from repro.prediction.model import presence_by_week


def jaccard(a: npt.ArrayLike, b: npt.ArrayLike) -> float:
    """Jaccard similarity of two boolean vectors.

    Two empty vectors are defined as similarity 1 (nothing contradicts
    nothing); one empty vs one non-empty is 0.
    """
    av = np.asarray(a, dtype=bool)
    bv = np.asarray(b, dtype=bool)
    union = np.logical_or(av, bv).sum()
    if union == 0:
        return 1.0
    return float(np.logical_and(av, bv).sum() / union)


@dataclass(frozen=True)
class CarStability:
    """Week-over-week similarity of one car's presence pattern."""

    car_id: str
    #: Jaccard similarity of each consecutive week pair.
    pairwise: npt.NDArray[np.float64]

    @property
    def mean(self) -> float:
        """Mean consecutive-week similarity; the car's predictability."""
        return float(self.pairwise.mean()) if self.pairwise.size else 0.0


@dataclass
class FleetStability:
    """Distribution of per-car stability over the fleet."""

    cars: list[CarStability]

    @property
    def n_cars(self) -> int:
        """Cars with at least one week pair."""
        return len(self.cars)

    def means(self) -> npt.NDArray[np.float64]:
        """Per-car mean stability values."""
        return np.asarray([c.mean for c in self.cars], dtype=np.float64)

    def fleet_mean(self) -> float:
        """Mean stability across the fleet."""
        means = self.means()
        return float(means.mean()) if means.size else 0.0

    def fraction_stable(self, threshold: float = 0.5) -> float:
        """Share of cars whose mean week-over-week similarity exceeds
        ``threshold`` — the "predictable" population."""
        means = self.means()
        if means.size == 0:
            return 0.0
        return float((means > threshold).mean())


def car_stability(
    car_id: str,
    weeks: dict[int, npt.NDArray[Any]],
    n_weeks: int,
) -> CarStability | None:
    """Stability of one car from its weekly presence vectors.

    Weeks with no presence at all count as empty vectors (the car stayed
    home), which correctly *lowers* a sporadic car's stability.  Returns
    ``None`` when fewer than two study weeks exist.
    """
    if n_weeks < 2:
        return None
    empty = np.zeros(168, dtype=bool)
    vectors = [weeks.get(w, empty) for w in range(n_weeks)]
    pairs = [jaccard(a, b) for a, b in zip(vectors, vectors[1:])]
    return CarStability(car_id=car_id, pairwise=np.asarray(pairs, dtype=np.float64))


def fleet_stability(batch: CDRBatch, clock: StudyClock) -> FleetStability:
    """Week-over-week stability for every car in the batch."""
    n_weeks = clock.n_days // 7
    cars: list[CarStability] = []
    for car_id, records in batch.by_car().items():
        weeks = presence_by_week(records, clock)
        stability = car_stability(car_id, weeks, n_weeks)
        if stability is not None:
            cars.append(stability)
    return FleetStability(cars=cars)
