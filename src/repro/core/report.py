"""Paper-style text rendering of analysis results.

Benchmarks and examples print the same rows and series the paper reports;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from repro.core.carriers import CARRIER_ORDER, CarrierUsage
from repro.core.handover import HandoverStats, HandoverType
from repro.core.pipeline import AnalysisReport
from repro.core.presence import WeekdayRow
from repro.core.segmentation import CarSegmentation


def format_weekday_table(rows: list[WeekdayRow]) -> str:
    """Table 1: usage of cells by cars and occurrence of cars per day."""
    lines = [
        "Day        | % cells mean | StDev | % cars mean | StDev",
        "-----------+--------------+-------+-------------+------",
    ]
    for row in rows:
        lines.append(
            f"{row.weekday:<10} | {row.cell_mean:>11.1%} | {row.cell_std:>5.1%} "
            f"| {row.car_mean:>10.1%} | {row.car_std:>5.1%}"
        )
    return "\n".join(lines)


def format_segmentation(seg: CarSegmentation) -> str:
    """Table 2: car segmentation by rarity and busy-hour affinity."""
    lines = [
        "Segment              |  Busy | Non-Busy |  Both | Total",
        "---------------------+-------+----------+-------+------",
    ]
    for row in seg.rows:
        lines.append(
            f"{row.label:<20} | {row.busy:>5.1%} | {row.non_busy:>8.1%} "
            f"| {row.both:>5.1%} | {row.total:>5.1%}"
        )
    return "\n".join(lines)


def format_carrier_table(usage: CarrierUsage) -> str:
    """Table 3: carrier use of connected cars."""
    header = "Carrier  | " + " | ".join(f"{c:>7}" for c in CARRIER_ORDER)
    cars = "Cars (%) | " + " | ".join(
        f"{usage.cars_fraction.get(c, 0.0):>7.1%}" for c in CARRIER_ORDER
    )
    time = "Time (%) | " + " | ".join(
        f"{usage.time_fraction.get(c, 0.0):>7.1%}" for c in CARRIER_ORDER
    )
    return "\n".join([header, cars, time])


def format_handover_stats(stats: HandoverStats) -> str:
    """Section 4.5: handover percentiles and type shares."""
    lines = [
        f"network sessions analyzed: {stats.n_sessions}",
        f"handovers per session: median {stats.median:.0f}, "
        f"p70 {stats.percentile(70):.0f}, p90 {stats.percentile(90):.0f}",
    ]
    for kind in HandoverType:
        lines.append(f"  {kind.value:<18}: {stats.type_fraction(kind):6.2%}")
    return "\n".join(lines)


def format_report(report: AnalysisReport) -> str:
    """Full multi-section text report of an analysis run."""
    sections = [
        "== Daily presence (Fig 2) ==",
        f"cars: {report.presence.n_cars_total}, cells ever used: "
        f"{report.presence.n_cells_total}",
        f"car trend: y = {report.presence.car_trend.slope:.5f}x + "
        f"{report.presence.car_trend.intercept:.4f} "
        f"(R^2 = {report.presence.car_trend.r_squared:.4f})",
        "",
        "== Table 1 ==",
        format_weekday_table(report.weekday_rows),
        "",
        "== Connected time (Fig 3) ==",
        f"mean share full: {report.connect_time.mean_full:.1%}, "
        f"truncated: {report.connect_time.mean_truncated:.1%}",
        "",
        "== Table 2 ==",
        format_segmentation(report.segmentation),
        "",
        "== Busy exposure (Fig 7) ==",
        f">50% busy time: {report.exposure.fraction_above(0.5):.1%} of cars; "
        f"all busy: {report.exposure.fraction_all_busy():.1%}",
        "",
        "== Table 3 ==",
        format_carrier_table(report.carriers),
    ]
    if report.handovers is not None:
        sections += ["", "== Handovers (Sec 4.5) ==", format_handover_stats(report.handovers)]
    if report.clusters is not None:
        sections += [
            "",
            "== Busy-cell clusters (Fig 11) ==",
            f"{report.clusters.k} clusters over {len(report.clusters.cell_ids)} busy cells; "
            f"level ratio {report.clusters.level_ratio():.1f}x, "
            f"size ratio {report.clusters.size_ratio():.1f}x, "
            f"shape correlation {report.clusters.shape_correlation():.2f}",
        ]
    if report.notes:
        sections += ["", "== Notes =="] + [f"- {n}" for n in report.notes]
    return "\n".join(sections)


def format_report_markdown(report: AnalysisReport) -> str:
    """Markdown rendering of a full analysis run, for notebooks and READMEs."""
    lines = [
        "## Connected-car analysis report",
        "",
        f"- cars: **{report.presence.n_cars_total}**, cells ever used: "
        f"**{report.presence.n_cells_total}**",
        f"- records kept: **{len(report.pre.full):,}** "
        f"({report.pre.n_dropped_ghosts} ghost rows dropped)",
        f"- mean connected share: **{report.connect_time.mean_full:.1%}** full / "
        f"**{report.connect_time.mean_truncated:.1%}** truncated",
        "",
        "### Table 1 — weekday presence",
        "",
        "| Day | % cells (mean) | σ | % cars (mean) | σ |",
        "|---|---|---|---|---|",
    ]
    for row in report.weekday_rows:
        lines.append(
            f"| {row.weekday} | {row.cell_mean:.1%} | {row.cell_std:.1%} "
            f"| {row.car_mean:.1%} | {row.car_std:.1%} |"
        )
    lines += [
        "",
        "### Table 2 — segmentation",
        "",
        "| Segment | Busy | Non-Busy | Both | Total |",
        "|---|---|---|---|---|",
    ]
    for row in report.segmentation.rows:
        lines.append(
            f"| {row.label} | {row.busy:.1%} | {row.non_busy:.1%} "
            f"| {row.both:.1%} | {row.total:.1%} |"
        )
    usage = report.carriers
    lines += [
        "",
        "### Table 3 — carrier use",
        "",
        "| | " + " | ".join(CARRIER_ORDER) + " |",
        "|---|" + "---|" * len(CARRIER_ORDER),
        "| Cars | "
        + " | ".join(f"{usage.cars_fraction.get(c, 0):.1%}" for c in CARRIER_ORDER)
        + " |",
        "| Time | "
        + " | ".join(f"{usage.time_fraction.get(c, 0):.1%}" for c in CARRIER_ORDER)
        + " |",
    ]
    if report.handovers is not None:
        h = report.handovers
        lines += [
            "",
            "### Handovers (Section 4.5)",
            "",
            f"median **{h.median:.0f}**, p70 **{h.percentile(70):.0f}**, "
            f"p90 **{h.percentile(90):.0f}** per network session; "
            f"inter-base-station share "
            f"**{h.type_fraction(HandoverType.INTER_BASE_STATION):.1%}**",
        ]
    if report.clusters is not None:
        c = report.clusters
        lines += [
            "",
            "### Busy-cell clusters (Figure 11)",
            "",
            f"{c.k} clusters over {len(c.cell_ids)} busy cells — level ratio "
            f"**{c.level_ratio():.1f}×**, size ratio **{c.size_ratio():.1f}×**, "
            f"shape correlation **{c.shape_correlation():.2f}**",
        ]
    return "\n".join(lines)
