"""Section 3 preprocessing: cleaning, truncation and session aggregation.

The paper applies three rules before any analysis:

1. *Drop erroneous records* whose connections "appear to have lasted exactly
   1 hour" — artifacts of periodic reporting without a recorded disconnect.
2. *Truncate* long single-cell connections to 600 seconds during analysis, to
   mitigate modems that improperly disconnect.
3. *Concatenate* connections up to 30 seconds apart into **aggregate
   sessions**, and (for handover analysis, Section 4.5) connections with gaps
   up to 10 minutes into **network sessions**.

:func:`preprocess` applies rule 1 once and exposes both full and truncated
views of the surviving records, because the paper repeatedly contrasts the
two (Figures 3 and 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.intervals import Interval, concatenate_gaps
from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.records import CDRBatch, ConnectionRecord

#: Duration that marks a record as an erroneous periodic-reporting ghost.
GHOST_DURATION_S = 3600.0
#: Tolerance around exactly one hour when matching ghost records.
GHOST_TOLERANCE_S = 0.5


@dataclass(frozen=True)
class PreprocessConfig:
    """Thresholds of the Section 3 methodology, paper defaults."""

    truncate_s: float = 600.0
    session_gap_s: float = 30.0
    network_session_gap_s: float = 600.0

    def __post_init__(self) -> None:
        if self.truncate_s <= 0:
            raise ValueError(f"truncate_s must be positive, got {self.truncate_s}")
        if self.session_gap_s < 0 or self.network_session_gap_s < 0:
            raise ValueError("session gaps must be non-negative")


class PreprocessResult:
    """Cleaned views of a CDR batch.

    ``full`` holds the records with ghost one-hour rows removed, durations
    as reported; ``truncated`` holds the same records with durations capped
    at ``config.truncate_s``; ``n_dropped_ghosts`` counts the removed rows.

    Both record views can be *lazy*: when built by :func:`preprocess_lazy`
    the columnar views (:meth:`columnar_full` / :meth:`columnar_truncated`)
    are available immediately while the :class:`~repro.cdr.records.CDRBatch`
    record lists materialize only on first access — the fused analysis
    engine never touches them, which is where roughly half of the eager
    pipeline's wall time went.
    """

    def __init__(
        self,
        config: PreprocessConfig,
        n_dropped_ghosts: int,
        *,
        full: CDRBatch | None = None,
        truncated: CDRBatch | None = None,
        kept_col: ColumnarCDRBatch | None = None,
        source_records: list[ConnectionRecord] | None = None,
        keep_idx: npt.NDArray[np.intp] | None = None,
    ) -> None:
        if full is None and (kept_col is None or source_records is None):
            raise ValueError(
                "lazy PreprocessResult needs kept_col and source_records"
            )
        self.config = config
        self.n_dropped_ghosts = n_dropped_ghosts
        self._full = full
        self._truncated = truncated
        self._kept_col = kept_col
        self._trunc_col: ColumnarCDRBatch | None = None
        self._source_records = source_records
        self._keep_idx = keep_idx
        self._sessions: dict[str, list[Interval]] = {}
        self._network_sessions: dict[str, list[list[ConnectionRecord]]] = {}

    @property
    def n_kept(self) -> int:
        """Number of records surviving the ghost drop (no materialization)."""
        if self._kept_col is not None:
            return len(self._kept_col)
        return len(self.full)

    def columnar_full(self) -> ColumnarCDRBatch:
        """Columnar view of ``full`` without materializing record objects."""
        if self._kept_col is None:
            self._kept_col = self.full.columnar()
        return self._kept_col

    def columnar_truncated(self) -> ColumnarCDRBatch:
        """Columnar view of ``truncated``; no record objects are built."""
        if self._trunc_col is None:
            self._trunc_col = self.columnar_full().truncated(
                self.config.truncate_s
            )
        return self._trunc_col

    @property
    def full(self) -> CDRBatch:
        """Ghost-free records, durations as reported (built on demand)."""
        if self._full is None:
            records = self._source_records
            if records is None:
                raise ValueError(
                    "PreprocessResult holds neither records nor a source"
                )
            if self._keep_idx is None:
                kept = records
            else:
                kept = [records[i] for i in self._keep_idx.tolist()]
            batch = CDRBatch(kept, assume_sorted=True)
            batch._columnar = self._kept_col
            self._full = batch
        return self._full

    @property
    def truncated(self) -> CDRBatch:
        """Ghost-free records capped at ``truncate_s`` (built on demand)."""
        if self._truncated is None:
            kept = self.full.records
            cap = self.config.truncate_s
            over_idx = np.flatnonzero(self.columnar_full().duration > cap)
            records = list(kept)
            for i in over_idx.tolist():
                records[i] = kept[i].truncated(cap)
            batch = CDRBatch(records, assume_sorted=True)
            batch._columnar = self.columnar_truncated()
            self._truncated = batch
        return self._truncated

    def aggregate_sessions(self, car_id: str) -> list[Interval]:
        """A car's aggregate sessions: truncated records joined over <=30 s gaps."""
        cached = self._sessions.get(car_id)
        if cached is None:
            cached = sessions_for(
                self.truncated.by_car().get(car_id, []), self.config.session_gap_s
            )
            self._sessions[car_id] = cached
        return cached

    def network_sessions(self, car_id: str) -> list[list[ConnectionRecord]]:
        """A car's network sessions: record runs with gaps <= 10 minutes.

        Unlike :meth:`aggregate_sessions` this keeps the records themselves
        (not just their union), because handover analysis needs the cell
        sequence inside each session.  Cached per car, like
        :meth:`aggregate_sessions`; ``by_car()`` groups are already
        chronological, so the grouping skips its defensive re-sort.
        """
        cached = self._network_sessions.get(car_id)
        if cached is None:
            cached = group_records_by_gap(
                self.truncated.by_car().get(car_id, []),
                self.config.network_session_gap_s,
                assume_sorted=True,
            )
            self._network_sessions[car_id] = cached
        return cached


def is_ghost_record(record: ConnectionRecord) -> bool:
    """Whether a record has the suspicious exactly-one-hour duration."""
    return abs(record.duration - GHOST_DURATION_S) <= GHOST_TOLERANCE_S


def preprocess(
    batch: CDRBatch, config: PreprocessConfig | None = None
) -> PreprocessResult:
    """Apply the Section 3 cleaning rules to a raw batch.

    Both rules run on the batch's columnar view: the ghost mask and the
    truncation are single vectorized array operations, and because dropping
    or capping rows of a time-sorted batch never reorders it, the cleaned
    batches are built with ``assume_sorted=True`` — no re-sort, no
    per-record Python predicates.
    """
    cfg = config or PreprocessConfig()
    records = batch.records
    col = batch.columnar()
    ghost_mask = np.abs(col.duration - GHOST_DURATION_S) <= GHOST_TOLERANCE_S
    n_ghosts = int(np.count_nonzero(ghost_mask))
    if n_ghosts:
        keep_idx = np.flatnonzero(~ghost_mask)
        kept = [records[i] for i in keep_idx.tolist()]
        kept_col = col.take(keep_idx)
    else:
        kept = records
        kept_col = col

    # Only the over-cap records need a fresh object; the rest are shared
    # with ``full``.  Capping durations cannot break the sort order because
    # min(d, cap) is monotone in d and duration is the last sort key.
    over_idx = np.flatnonzero(kept_col.duration > cfg.truncate_s)
    truncated = list(kept)
    for i in over_idx.tolist():
        truncated[i] = kept[i].truncated(cfg.truncate_s)

    full = CDRBatch(kept, assume_sorted=True)
    full._columnar = kept_col
    truncated_batch = CDRBatch(truncated, assume_sorted=True)
    trunc_col = kept_col.truncated(cfg.truncate_s)
    truncated_batch._columnar = trunc_col
    result = PreprocessResult(
        cfg,
        n_ghosts,
        full=full,
        truncated=truncated_batch,
        kept_col=kept_col,
    )
    result._trunc_col = trunc_col
    return result


def preprocess_lazy(
    batch: CDRBatch, config: PreprocessConfig | None = None
) -> PreprocessResult:
    """Section 3 cleaning with deferred record materialization.

    Same rules and results as :func:`preprocess`, but only the columnar
    views are built up front; the ``full`` / ``truncated`` record lists are
    constructed on first attribute access.  The fused engine
    (:mod:`repro.core.fused`) consumes the columnar views exclusively, so a
    fused pipeline run never pays the per-record ``truncated()`` copies.
    """
    cfg = config or PreprocessConfig()
    col = batch.columnar()
    ghost_mask = np.abs(col.duration - GHOST_DURATION_S) <= GHOST_TOLERANCE_S
    n_ghosts = int(np.count_nonzero(ghost_mask))
    if n_ghosts:
        keep_idx = np.flatnonzero(~ghost_mask)
        kept_col = col.take(keep_idx)
    else:
        kept_col = col
        keep_idx = None
    return PreprocessResult(
        cfg,
        n_ghosts,
        kept_col=kept_col,
        source_records=batch.records,
        keep_idx=keep_idx,
    )


def sessions_for(
    records: list[ConnectionRecord], max_gap_s: float
) -> list[Interval]:
    """Aggregate a car's records into sessions joined over gaps <= ``max_gap_s``."""
    return concatenate_gaps((rec.interval for rec in records), max_gap_s)


def group_records_by_gap(
    records: list[ConnectionRecord],
    max_gap_s: float,
    *,
    assume_sorted: bool = False,
) -> list[list[ConnectionRecord]]:
    """Split a chronological record list into runs with bounded gaps.

    A new group starts whenever a record begins more than ``max_gap_s``
    seconds after the latest end seen so far (records can overlap, so the
    group's extent — not the previous record — defines the gap).

    ``assume_sorted=True`` skips the defensive sort for callers whose input
    is already chronological (``by_car()`` groups of a sorted batch).
    """
    groups: list[list[ConnectionRecord]] = []
    group_end = float("-inf")
    for rec in records if assume_sorted else sorted(records):
        if not groups or rec.start - group_end > max_gap_s:
            groups.append([rec])
        else:
            groups[-1].append(rec)
        group_end = max(group_end, rec.end)
    return groups
