"""24x7 hour-of-week matrices (Figures 4 and 5).

The paper encodes weekly behaviour in 24x7 matrices — one cell per (hour of
day, day of week) — both for canonical period masks (commute peak, network
peak, weekend) and for each car's connection frequency aggregated over all
study weeks.  Darker cells mean more connections in that hour across the
study; consistent dark columns reveal commutes.

Matrices here are numpy arrays of shape ``(24, 7)``: row = hour of day,
column = day of week starting Monday, matching the paper's rendering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.timebins import HOUR, StudyClock
from repro.cdr.records import ConnectionRecord


@dataclass(frozen=True)
class UsageMatrix:
    """One car's 24x7 connection-frequency matrix."""

    car_id: str
    counts: npt.NDArray[np.int64]  # shape (24, 7)

    def __post_init__(self) -> None:
        if self.counts.shape != (24, 7):
            raise ValueError(f"expected shape (24, 7), got {self.counts.shape}")

    @property
    def total_connections(self) -> int:
        """Total hour-cell hits across the study."""
        return int(self.counts.sum())

    @property
    def active_hours(self) -> int:
        """Number of distinct (hour, weekday) cells ever used."""
        return int((self.counts > 0).sum())

    def normalized(self) -> npt.NDArray[np.float64]:
        """Counts scaled to [0, 1] by the matrix maximum (for rendering)."""
        peak = self.counts.max()
        if peak == 0:
            return self.counts.astype(np.float64)
        return self.counts / peak

    def overlap_fraction(self, mask: npt.NDArray[np.bool_]) -> float:
        """Fraction of this car's connections landing inside a period mask."""
        if self.total_connections == 0:
            return 0.0
        return float(self.counts[mask.astype(bool)].sum() / self.total_connections)

    def render(self, shades: str = " .:-=+*#%@") -> str:
        """ASCII rendering: rows are hours (0..23), columns Monday..Sunday."""
        norm = self.normalized()
        lines = ["    M T W T F S S"]
        for hour in range(24):
            cells = []
            for wd in range(7):
                level = int(round(norm[hour, wd] * (len(shades) - 1)))
                cells.append(shades[level])
            lines.append(f"{hour:>2}  " + " ".join(cells))
        return "\n".join(lines)


@dataclass(frozen=True)
class PeriodMasks:
    """The canonical significant-period masks of Figure 4, shape (24, 7)."""

    commute_peak: npt.NDArray[np.bool_]
    network_peak: npt.NDArray[np.bool_]
    weekend: npt.NDArray[np.bool_]


def period_masks() -> PeriodMasks:
    """Figure 4's significant time ranges as boolean matrices.

    Commute peaks: weekday mornings 7-9 and evenings 16-19 local.  Network
    peak: 14:00-24:00 every day (the busy hours of Section 4.2, which the
    paper notes overlap the evening commute).  Weekend: all of Saturday and
    Sunday.
    """
    commute = np.zeros((24, 7), dtype=bool)
    commute[7:9, 0:5] = True
    commute[16:19, 0:5] = True
    network = np.zeros((24, 7), dtype=bool)
    network[14:24, :] = True
    weekend = np.zeros((24, 7), dtype=bool)
    weekend[:, 5:7] = True
    return PeriodMasks(commute_peak=commute, network_peak=network, weekend=weekend)


def usage_matrix(
    car_id: str, records: list[ConnectionRecord], clock: StudyClock
) -> UsageMatrix:
    """Build a car's 24x7 matrix from its records.

    Every hour-of-week cell a record's interval touches gets one hit per
    record, so a two-hour connection darkens two cells — the paper counts
    connections *during* each hour, not connection starts.
    """
    counts = np.zeros((24, 7), dtype=np.int64)
    for rec in records:
        if rec.car_id != car_id:
            raise ValueError(f"record for {rec.car_id} passed to matrix of {car_id}")
        first_hour = int(rec.start // HOUR)
        last_hour = int(rec.end // HOUR)
        if rec.end % HOUR == 0 and rec.end > rec.start:
            last_hour -= 1
        for h in range(first_hour, last_hour + 1):
            t = h * HOUR
            counts[clock.hour_of_day(t), clock.weekday(t)] += 1
    return UsageMatrix(car_id=car_id, counts=counts)


def matrices_for_all(
    by_car: dict[str, list[ConnectionRecord]], clock: StudyClock
) -> dict[str, UsageMatrix]:
    """Usage matrices for every car in a grouped batch."""
    return {car: usage_matrix(car, recs, clock) for car, recs in by_car.items()}


def regularity_score(matrix: UsageMatrix) -> float:
    """How concentrated a car's usage is in few hour-of-week cells.

    1 means all connections in one cell; near 0 means spread evenly over the
    full week.  The paper's sample cars (Figure 5) differ exactly along this
    axis, and predictable cars are the lever for smart FOTA scheduling.
    """
    total = matrix.total_connections
    if total == 0:
        return 0.0
    p = matrix.counts[matrix.counts > 0].astype(float) / total
    entropy = float(-(p * np.log(p)).sum())
    max_entropy = float(np.log(24 * 7))
    return 1.0 - entropy / max_entropy
