"""The handover graph: which base stations hand cars to which.

Aggregating every observed inter-site handover into a weighted directed
graph exposes the road network through the radio log: heavy edges are
commute corridors, node strength ranks sites by through-traffic, and edge
geometry (the distance between endpoint sites) reflects cell sizes.  This is
the spatial companion to Section 4.5's per-session handover counts and the
substrate an operator would use to pick sites for capacity upgrades before a
FOTA campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx  # type: ignore[import-untyped]
import numpy as np

from repro.core.preprocess import PreprocessResult
from repro.network.cells import Cell
from repro.network.geometry import Point, distance


@dataclass(frozen=True)
class Corridor:
    """One directed site-to-site handover edge."""

    src_site: int
    dst_site: int
    handovers: int
    length_km: float


def build_handover_graph(
    pre: PreprocessResult, cells: dict[int, Cell]
) -> nx.DiGraph:
    """Weighted directed graph of observed inter-site handovers.

    Nodes are base station ids with a ``pos`` attribute; edge weight
    ``handovers`` counts transitions inside network sessions, and
    ``length_km`` is the straight-line distance between the sites.
    """
    graph = nx.DiGraph()
    site_pos: dict[int, Point] = {}
    for car_id in pre.truncated.car_ids():
        for session in pre.network_sessions(car_id):
            known = [rec for rec in session if rec.cell_id in cells]
            for prev, cur in zip(known, known[1:]):
                a = cells[prev.cell_id]
                b = cells[cur.cell_id]
                if a.base_station_id == b.base_station_id:
                    continue
                site_pos.setdefault(a.base_station_id, a.location)
                site_pos.setdefault(b.base_station_id, b.location)
                key = (a.base_station_id, b.base_station_id)
                if graph.has_edge(*key):
                    graph.edges[key]["handovers"] += 1
                else:
                    graph.add_edge(
                        *key,
                        handovers=1,
                        length_km=distance(a.location, b.location),
                    )
    for site, pos in site_pos.items():
        graph.nodes[site]["pos"] = pos
    return graph


def top_corridors(graph: nx.DiGraph, n: int = 10) -> list[Corridor]:
    """The ``n`` busiest directed handover corridors."""
    edges = sorted(
        graph.edges(data=True), key=lambda e: e[2]["handovers"], reverse=True
    )
    return [
        Corridor(
            src_site=a,
            dst_site=b,
            handovers=data["handovers"],
            length_km=data["length_km"],
        )
        for a, b, data in edges[:n]
    ]


def edge_length_stats(graph: nx.DiGraph) -> tuple[float, float]:
    """(median, p90) of handover edge lengths in km.

    On a healthy log this sits near the site pitch: handovers connect
    neighbouring sites, not distant ones.  A heavy tail of long edges means
    the log is missing intermediate cells (the under-sampling of
    Section 4.5).
    """
    lengths = np.asarray([d["length_km"] for _, _, d in graph.edges(data=True)])
    if lengths.size == 0:
        raise ValueError("handover graph has no edges")
    return float(np.median(lengths)), float(np.percentile(lengths, 90))


def site_throughput_ranking(graph: nx.DiGraph, n: int = 10) -> list[tuple[int, int]]:
    """Sites ranked by total handover throughput (in + out), top ``n``."""
    strength: dict[int, int] = {
        node: sum(d["handovers"] for *_, d in graph.in_edges(node, data=True))
        + sum(d["handovers"] for *_, d in graph.out_edges(node, data=True))
        for node in graph.nodes
    }
    ranked = sorted(strength.items(), key=lambda kv: kv[1], reverse=True)
    return ranked[:n]


def reciprocity(graph: nx.DiGraph) -> float:
    """Fraction of corridors that are also travelled in reverse.

    Commute traffic is strongly bidirectional (out in the morning, back in
    the evening), so a trace with realistic mobility shows high reciprocity.
    """
    if graph.number_of_edges() == 0:
        raise ValueError("handover graph has no edges")
    reciprocal = sum(1 for a, b in graph.edges if graph.has_edge(b, a))
    return float(reciprocal / graph.number_of_edges())
