"""Handover analysis (Section 4.5).

Radio logs cannot trace every cell a car passes — idle cars disconnect — so
the paper bounds handovers from below: within each *network session* (record
runs whose gaps never exceed 10 minutes), every change of cell between
consecutive records counts as one handover.  Each is classified by what
changed:

* between base stations (the dominant kind),
* between sectors of the same base station,
* between carriers of the same sector,
* between radio technologies (3G/4G).

The paper reports a median of 2 handovers per session, 70th percentile 4 and
90th percentile 9, with non-base-station types negligible.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.segments import segment_ids, segmented_cummax
from repro.algorithms.stats import percentile
from repro.cdr.records import CDRBatch
from repro.core.preprocess import PreprocessResult
from repro.network.cells import Cell


class HandoverType(enum.Enum):
    """What changed between consecutive serving cells."""

    INTER_BASE_STATION = "inter-base-station"
    INTER_SECTOR = "inter-sector"
    INTER_CARRIER = "inter-carrier"
    INTER_RAT = "inter-RAT"


def classify_handover(src: Cell, dst: Cell) -> HandoverType:
    """Classify one handover between two (different) cells.

    Technology changes take precedence (a 3G/4G transition is inter-RAT even
    across base stations), then base-station, sector and finally carrier
    changes — mirroring how the paper tabulates mutually exclusive types.
    """
    if src.cell_id == dst.cell_id:
        raise ValueError("not a handover: identical source and target cell")
    if src.technology != dst.technology:
        return HandoverType.INTER_RAT
    if src.base_station_id != dst.base_station_id:
        return HandoverType.INTER_BASE_STATION
    if src.sector_index != dst.sector_index:
        return HandoverType.INTER_SECTOR
    return HandoverType.INTER_CARRIER


@dataclass(frozen=True)
class HandoverStats:
    """Handover counts per network session plus the type breakdown."""

    #: One entry per network session: number of handovers inside it.
    per_session: npt.NDArray[np.float64]
    type_counts: Counter[HandoverType]

    @property
    def n_sessions(self) -> int:
        """Number of network sessions analyzed."""
        return int(self.per_session.size)

    @property
    def total_handovers(self) -> int:
        """Total handovers across all sessions."""
        return int(self.per_session.sum())

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of handovers per session."""
        if self.per_session.size == 0:
            raise ValueError("no sessions to take percentiles over")
        return percentile(self.per_session, q)

    @property
    def median(self) -> float:
        """Median handovers per session (paper: 2)."""
        return self.percentile(50)

    def type_fraction(self, kind: HandoverType) -> float:
        """Share of all handovers of the given type."""
        total = self.total_handovers
        if total == 0:
            return 0.0
        return self.type_counts.get(kind, 0) / total

    def base_stations_spanned_percentile(self, q: float) -> float:
        """Percentile of base stations touched per session (handovers + 1).

        The paper phrases impact as spanning "between 3 and 10 base
        stations" for most large downloads: a session with h inter-site
        handovers touches about h + 1 sites.
        """
        return self.percentile(q) + 1.0


def handover_analysis(
    pre: PreprocessResult,
    cells: dict[int, Cell],
    min_records: int = 2,
) -> HandoverStats:
    """Count and classify handovers inside every car's network sessions.

    ``cells`` maps cell ids to topology cells (``topology.cells``).  Records
    whose cell is unknown to the directory are skipped defensively — in a
    real pipeline these are cells missing from the inventory dump.
    Sessions with fewer than ``min_records`` records cannot contain a
    handover but still contribute a zero count, keeping the paper's
    "median 2" statistic honest about mostly-idle sessions.
    """
    counts: list[int] = []
    types: Counter[HandoverType] = Counter()
    for car_id in pre.truncated.car_ids():
        for session in pre.network_sessions(car_id):
            known = [rec for rec in session if rec.cell_id in cells]
            if len(known) < min_records and len(session) >= min_records:
                continue
            handovers = 0
            for prev, cur in zip(known, known[1:]):
                if prev.cell_id == cur.cell_id:
                    continue
                handovers += 1
                types[classify_handover(cells[prev.cell_id], cells[cur.cell_id])] += 1
            counts.append(handovers)
    return HandoverStats(per_session=np.asarray(counts, dtype=float), type_counts=types)


def handover_analysis_columnar(
    pre: PreprocessResult,
    cells: dict[int, Cell],
    min_records: int = 2,
) -> HandoverStats:
    """Vectorized :func:`handover_analysis` over the truncated columnar view.

    Rearranges the batch car-major (chronological within car), finds network
    session boundaries with a segmented high-water-mark scan (a session
    breaks exactly where the reference's gap grouping breaks: ``start -
    running max end > gap``), and counts cell changes between consecutive
    known-cell rows of each session with array comparisons.  Handover types
    come from integer lookups into per-cell attribute arrays built once from
    the directory.  Sessions are emitted in the reference's order (cars
    sorted by id, sessions chronological), so ``per_session`` matches
    element for element.
    """
    col = pre.truncated.columnar()
    n = len(col)
    gap = pre.config.network_session_gap_s
    empty_stats = HandoverStats(
        per_session=np.asarray([], dtype=float), type_counts=Counter()
    )
    if n == 0:
        return empty_stats

    order, starts = col.car_spans()
    s = col.start[order]
    e = s + col.duration[order]
    cell = col.cell_id[order]
    is_car_start = np.zeros(n, dtype=np.bool_)
    is_car_start[starts] = True
    cm = segmented_cummax(e, is_car_start)
    new_sess = is_car_start.copy()
    new_sess[1:] |= ~is_car_start[1:] & (s[1:] - cm[:-1] > gap)
    sid = segment_ids(new_sess)
    n_sessions = int(sid[-1]) + 1

    directory = np.fromiter(sorted(cells), dtype=np.int64, count=len(cells))
    known = (
        np.isin(cell, directory)
        if directory.size
        else np.zeros(n, dtype=np.bool_)
    )
    size_per = np.bincount(sid, minlength=n_sessions)
    known_per = np.bincount(sid[known], minlength=n_sessions)
    keep = ~((known_per < min_records) & (size_per >= min_records))

    # Per-known-row attributes for classification, gathered once from the
    # sorted directory.
    tech_index = {t: i for i, t in enumerate(
        sorted({c.technology for c in cells.values()}, key=lambda t: t.value)
    )}
    dir_tech = np.asarray(
        [tech_index[cells[int(c)].technology] for c in directory], dtype=np.int64
    )
    dir_bs = np.asarray(
        [cells[int(c)].base_station_id for c in directory], dtype=np.int64
    )
    dir_sector = np.asarray(
        [cells[int(c)].sector_index for c in directory], dtype=np.int64
    )
    kr = np.flatnonzero(known)
    k_dir = np.searchsorted(directory, cell[kr])

    src = kr[:-1]
    dst = kr[1:]
    pair = (
        (sid[src] == sid[dst]) & (cell[src] != cell[dst]) & keep[sid[src]]
    )
    ho_counts = np.bincount(sid[src[pair]], minlength=n_sessions)

    src_a = k_dir[:-1][pair]
    dst_a = k_dir[1:][pair]
    kind = np.where(
        dir_tech[src_a] != dir_tech[dst_a],
        0,
        np.where(
            dir_bs[src_a] != dir_bs[dst_a],
            1,
            np.where(dir_sector[src_a] != dir_sector[dst_a], 2, 3),
        ),
    )
    kind_order = (
        HandoverType.INTER_RAT,
        HandoverType.INTER_BASE_STATION,
        HandoverType.INTER_SECTOR,
        HandoverType.INTER_CARRIER,
    )
    kind_counts = np.bincount(kind, minlength=4)
    types: Counter[HandoverType] = Counter()
    for i, ho_type in enumerate(kind_order):
        if int(kind_counts[i]) > 0:
            types[ho_type] = int(kind_counts[i])

    return HandoverStats(
        per_session=ho_counts[keep].astype(float), type_counts=types
    )


def handovers_in_batch(
    batch: CDRBatch, cells: dict[int, Cell]
) -> Counter[HandoverType]:
    """Type breakdown of cell changes between *consecutive records* per car.

    A coarser view than :func:`handover_analysis` (no session gap bound);
    useful for sanity checks on generated traces.
    """
    types: Counter[HandoverType] = Counter()
    for records in batch.by_car().values():
        for prev, cur in zip(records, records[1:]):
            if prev.cell_id == cur.cell_id:
                continue
            if prev.cell_id in cells and cur.cell_id in cells:
                types[classify_handover(cells[prev.cell_id], cells[cur.cell_id])] += 1
    return types
