"""Handover analysis (Section 4.5).

Radio logs cannot trace every cell a car passes — idle cars disconnect — so
the paper bounds handovers from below: within each *network session* (record
runs whose gaps never exceed 10 minutes), every change of cell between
consecutive records counts as one handover.  Each is classified by what
changed:

* between base stations (the dominant kind),
* between sectors of the same base station,
* between carriers of the same sector,
* between radio technologies (3G/4G).

The paper reports a median of 2 handovers per session, 70th percentile 4 and
90th percentile 9, with non-base-station types negligible.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.algorithms.stats import percentile
from repro.cdr.records import CDRBatch
from repro.core.preprocess import PreprocessResult
from repro.network.cells import Cell


class HandoverType(enum.Enum):
    """What changed between consecutive serving cells."""

    INTER_BASE_STATION = "inter-base-station"
    INTER_SECTOR = "inter-sector"
    INTER_CARRIER = "inter-carrier"
    INTER_RAT = "inter-RAT"


def classify_handover(src: Cell, dst: Cell) -> HandoverType:
    """Classify one handover between two (different) cells.

    Technology changes take precedence (a 3G/4G transition is inter-RAT even
    across base stations), then base-station, sector and finally carrier
    changes — mirroring how the paper tabulates mutually exclusive types.
    """
    if src.cell_id == dst.cell_id:
        raise ValueError("not a handover: identical source and target cell")
    if src.technology != dst.technology:
        return HandoverType.INTER_RAT
    if src.base_station_id != dst.base_station_id:
        return HandoverType.INTER_BASE_STATION
    if src.sector_index != dst.sector_index:
        return HandoverType.INTER_SECTOR
    return HandoverType.INTER_CARRIER


@dataclass(frozen=True)
class HandoverStats:
    """Handover counts per network session plus the type breakdown."""

    #: One entry per network session: number of handovers inside it.
    per_session: np.ndarray
    type_counts: Counter

    @property
    def n_sessions(self) -> int:
        """Number of network sessions analyzed."""
        return int(self.per_session.size)

    @property
    def total_handovers(self) -> int:
        """Total handovers across all sessions."""
        return int(self.per_session.sum())

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of handovers per session."""
        if self.per_session.size == 0:
            raise ValueError("no sessions to take percentiles over")
        return percentile(self.per_session, q)

    @property
    def median(self) -> float:
        """Median handovers per session (paper: 2)."""
        return self.percentile(50)

    def type_fraction(self, kind: HandoverType) -> float:
        """Share of all handovers of the given type."""
        total = self.total_handovers
        if total == 0:
            return 0.0
        return self.type_counts.get(kind, 0) / total

    def base_stations_spanned_percentile(self, q: float) -> float:
        """Percentile of base stations touched per session (handovers + 1).

        The paper phrases impact as spanning "between 3 and 10 base
        stations" for most large downloads: a session with h inter-site
        handovers touches about h + 1 sites.
        """
        return self.percentile(q) + 1.0


def handover_analysis(
    pre: PreprocessResult,
    cells: dict[int, Cell],
    min_records: int = 2,
) -> HandoverStats:
    """Count and classify handovers inside every car's network sessions.

    ``cells`` maps cell ids to topology cells (``topology.cells``).  Records
    whose cell is unknown to the directory are skipped defensively — in a
    real pipeline these are cells missing from the inventory dump.
    Sessions with fewer than ``min_records`` records cannot contain a
    handover but still contribute a zero count, keeping the paper's
    "median 2" statistic honest about mostly-idle sessions.
    """
    counts: list[int] = []
    types: Counter = Counter()
    for car_id in pre.truncated.car_ids():
        for session in pre.network_sessions(car_id):
            known = [rec for rec in session if rec.cell_id in cells]
            if len(known) < min_records and len(session) >= min_records:
                continue
            handovers = 0
            for prev, cur in zip(known, known[1:]):
                if prev.cell_id == cur.cell_id:
                    continue
                handovers += 1
                types[classify_handover(cells[prev.cell_id], cells[cur.cell_id])] += 1
            counts.append(handovers)
    return HandoverStats(per_session=np.asarray(counts, dtype=float), type_counts=types)


def handovers_in_batch(batch: CDRBatch, cells: dict[int, Cell]) -> Counter:
    """Type breakdown of cell changes between *consecutive records* per car.

    A coarser view than :func:`handover_analysis` (no session gap bound);
    useful for sanity checks on generated traces.
    """
    types: Counter = Counter()
    for records in batch.by_car().values():
        for prev, cur in zip(records, records[1:]):
            if prev.cell_id == cur.cell_id:
                continue
            if prev.cell_id in cells and cur.cell_id in cells:
                types[classify_handover(cells[prev.cell_id], cells[cur.cell_id])] += 1
    return types
