"""Out-of-core (single-pass) versions of the headline analyses.

At the paper's scale — 1.1 billion CDRs — the in-memory pipeline of
:mod:`repro.core.pipeline` does not apply; an analyst streams the CDR feed
once and keeps bounded state.  :class:`StreamingAnalyzer` consumes either an
iterator of :class:`~repro.cdr.records.ConnectionRecord` (e.g. straight from
:func:`repro.cdr.io.read_records_csv`) or — much faster — columnar chunks
from :func:`repro.cdr.store.iter_cdrz_chunks`, and produces:

* Figure 9's duration statistics (P-squared median / p73, Welford means,
  share above the 600 s truncation cutoff),
* Figure 3's per-car connected time (exact, state bounded by the number of
  *cars*, not records, using the sorted-stream overlap-merge trick),
* Figure 2's distinct cars / cells per day via HyperLogLog sketches,
* Table 3's carrier time shares.

Ghost records (exactly one hour) are dropped inline, mirroring Section 3.

The columnar path (:meth:`StreamingAnalyzer.consume_columnar`) is
bit-identical to the scalar path by construction: every order-sensitive
float accumulator (P², Welford, carrier and per-car running sums) is still
updated sequentially in row order with the very same operations, while only
the order-*independent* work is vectorized — the ghost mask, the duration
cap, the day indices, the histogram counter and the HyperLogLog register
maxima (duplicate inserts are no-ops, so per-day unique inserts suffice).

For multi-process map-reduce (:mod:`repro.core.mapreduce`) an analyzer can
run with ``quantile_mode="histogram"`` and ``track_partials=True``, export
its accumulator state as a picklable :class:`StreamingPartial`, and a
reducer analyzer folds shard partials back together with
:meth:`StreamingAnalyzer.absorb_partial` — in shard order, so the global
result is identical for any worker count.  The per-car connected time
merges *exactly* across shard boundaries: because the global stream is
sorted by start, an earlier shard's per-car high-water mark can only reach
``truncate_s`` past the later shard's first start for that car, so each
partial carries the few union intervals near its start (the "head") and
the reducer subtracts their overlap with the accumulated mark.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.streaming import (
    HistogramQuantile,
    HyperLogLog,
    P2Quantile,
    RunningMoments,
    StreamingHistogram,
)
from repro.algorithms.timebins import StudyClock
from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.records import ConnectionRecord
from repro.core.fused import ChunkIntermediates
from repro.core.preprocess import is_ghost_record


@dataclass(frozen=True)
class StreamingResult:
    """Summary produced by one streaming pass."""

    n_records: int
    n_ghosts_dropped: int
    duration_median: float
    duration_p73: float
    duration_mean_full: float
    duration_mean_truncated: float
    fraction_over_cutoff: float
    mean_connect_share_truncated: float
    distinct_cars_per_day: npt.NDArray[np.float64]
    distinct_cells_per_day: npt.NDArray[np.float64]
    carrier_time_fraction: dict[str, float]


@dataclass
class StreamingPartial:
    """Picklable accumulator snapshot of one shard's streaming pass.

    Produced by :meth:`StreamingAnalyzer.export_partial` in a map worker
    and folded into a reducer analyzer with
    :meth:`StreamingAnalyzer.absorb_partial`.  Each partial is a pure
    function of its shard's bytes, and the reducer folds partials in shard
    index order, so the reduced result is identical for any worker count.

    ``car_head`` holds, per car, the union intervals that start within
    ``truncate_s`` of the car's first record in the shard — the only
    intervals an earlier shard's high-water mark can reach (the stream is
    globally start-sorted), and therefore all the state an exact
    connected-time merge needs.  ``start_min`` / ``start_max`` span the
    kept records (``+inf`` / ``-inf`` when the shard is empty) and let the
    reducer reject out-of-order folds.
    """

    n_records: int
    n_ghosts: int
    truncate_s: float
    start_min: float
    start_max: float
    quantile_hist: HistogramQuantile
    mean_full: RunningMoments
    mean_trunc: RunningMoments
    tail: StreamingHistogram
    car_total: dict[str, float]
    car_end: dict[str, float]
    car_head: dict[str, list[list[float]]]
    cars_per_day: list[HyperLogLog]
    cells_per_day: list[HyperLogLog]
    carrier_time: dict[str, float]
    total_time: float


class StreamingAnalyzer:
    """Single-pass analyzer over a chronologically sorted record stream.

    Use :meth:`run` (scalar records) or :meth:`run_columnar` (cdrz chunks)
    for one-shot passes, or drive a pass yourself with :meth:`begin`, any
    mix of :meth:`consume` / :meth:`consume_columnar` calls, and
    :meth:`finalize`.  Both ingestion paths fold into the same accumulator
    state, so they can even be interleaved within one pass (e.g. a legacy
    CSV day followed by cdrz shards); whatever the mix, the combined row
    stream must stay globally sorted by start time for the per-car
    overlap-merge to stay exact.

    Parameters
    ----------
    clock:
        Study calendar.
    truncate_s:
        The Section 3 truncation cutoff applied to the truncated statistics.
    hll_precision:
        Precision of the per-day HyperLogLog sketches (12 -> ~1.6% error).
    quantile_mode:
        ``"p2"`` (default) estimates the duration median / p73 with the
        order-sensitive P-squared markers — bit-identical to the original
        serial pass.  ``"histogram"`` uses the mergeable
        :class:`~repro.algorithms.streaming.HistogramQuantile` instead
        (exact to ``quantile_bin_s / 2``), which map-reduce requires.
    quantile_bin_s:
        Bin width of the histogram quantile estimator (histogram mode).
    track_partials:
        Maintain the per-car merge-boundary state that
        :meth:`export_partial` needs.  Requires histogram quantile mode.
    """

    _QUANTILE_MODES = ("p2", "histogram")

    def __init__(
        self,
        clock: StudyClock,
        truncate_s: float = 600.0,
        hll_precision: int = 12,
        quantile_mode: str = "p2",
        quantile_bin_s: float = 1.0,
        track_partials: bool = False,
    ) -> None:
        if quantile_mode not in self._QUANTILE_MODES:
            raise ValueError(
                f"quantile_mode must be one of {self._QUANTILE_MODES}, "
                f"got {quantile_mode!r}"
            )
        if track_partials and quantile_mode != "histogram":
            raise ValueError(
                "track_partials requires quantile_mode='histogram': "
                "P-squared marker state cannot be merged across partials"
            )
        self.clock = clock
        self.truncate_s = truncate_s
        self._hll_precision = hll_precision
        self.quantile_mode = quantile_mode
        self.quantile_bin_s = quantile_bin_s
        self.track_partials = track_partials
        self.begin()

    def begin(self) -> None:
        """Reset all accumulator state for a fresh pass."""
        clock = self.clock
        self._n_records = 0
        self._n_ghosts = 0
        self._median = P2Quantile(0.5)
        self._p73 = P2Quantile(0.73)
        self._quantile_hist: HistogramQuantile | None = (
            HistogramQuantile(self.quantile_bin_s)
            if self.quantile_mode == "histogram"
            else None
        )
        self._mean_full = RunningMoments()
        self._mean_trunc = RunningMoments()
        self._tail = StreamingHistogram(bin_width=self.truncate_s)
        # Per-car connected time with overlap merge; state is O(cars).
        self._car_end: dict[str, float] = {}
        self._car_total: dict[str, float] = {}
        self._cars_per_day = [
            HyperLogLog(self._hll_precision) for _ in range(clock.n_days)
        ]
        self._cells_per_day = [
            HyperLogLog(self._hll_precision) for _ in range(clock.n_days)
        ]
        self._carrier_time: dict[str, float] = {}
        self._total_time = 0.0
        # Span of kept record starts, for out-of-order fold detection.
        self._start_min = math.inf
        self._start_max = -math.inf
        # Merge-boundary state, maintained only when track_partials: the
        # car's first kept start, its head union intervals, and whether
        # the newest union interval is still the last head entry.
        self._car_first: dict[str, float] = {}
        self._car_head: dict[str, list[list[float]]] = {}
        self._car_head_open: dict[str, bool] = {}

    def _note_new_interval(self, car: str, begin: float, end: float) -> None:
        """Record a new per-car union interval in the merge-boundary state."""
        first = self._car_first.get(car)
        if first is None:
            self._car_first[car] = begin
            self._car_head[car] = [[begin, end]]
            self._car_head_open[car] = True
        elif begin < first + self.truncate_s:
            self._car_head[car].append([begin, end])
            self._car_head_open[car] = True
        else:
            self._car_head_open[car] = False

    def _note_extension(self, car: str, end: float) -> None:
        """Extend the car's open union interval in the merge-boundary state."""
        if self._car_head_open[car]:
            self._car_head[car][-1][1] = end

    def consume(self, records: Iterable[ConnectionRecord]) -> None:
        """Fold scalar records into the pass, one at a time.

        The per-car connected-time accumulator relies on the stream being
        sorted by start time (as every writer in :mod:`repro.cdr.io`
        produces): overlapping records of one car merge exactly via a
        per-car high-water mark.
        """
        clock = self.clock
        quantile_hist = self._quantile_hist
        track = self.track_partials
        for rec in records:
            if is_ghost_record(rec):
                self._n_ghosts += 1
                continue
            self._n_records += 1
            if rec.start < self._start_min:
                self._start_min = rec.start
            if rec.start > self._start_max:
                self._start_max = rec.start

            duration = rec.duration
            truncated = min(duration, self.truncate_s)
            if quantile_hist is None:
                self._median.add(duration)
                self._p73.add(duration)
            else:
                quantile_hist.add(duration)
            self._mean_full.add(duration)
            self._mean_trunc.add(truncated)
            self._tail.add(duration)

            self._carrier_time[rec.carrier] = (
                self._carrier_time.get(rec.carrier, 0.0) + duration
            )
            self._total_time += duration

            day = clock.day_index(rec.start)
            if 0 <= day < clock.n_days:
                self._cars_per_day[day].add(rec.car_id)
                self._cells_per_day[day].add(str(rec.cell_id))

            # Exact union of truncated intervals for the car.
            end = rec.start + truncated
            prev_end = self._car_end.get(rec.car_id, float("-inf"))
            if rec.start >= prev_end:
                self._car_total[rec.car_id] = (
                    self._car_total.get(rec.car_id, 0.0) + truncated
                )
                self._car_end[rec.car_id] = end
                if track:
                    self._note_new_interval(rec.car_id, rec.start, end)
            elif end > prev_end:
                self._car_total[rec.car_id] += end - prev_end
                self._car_end[rec.car_id] = end
                if track:
                    self._note_extension(rec.car_id, end)

    def consume_columnar(self, chunk: ColumnarCDRBatch) -> None:
        """Fold one columnar chunk into the pass, bit-identical to scalar.

        Thin wrapper: builds the shared :class:`ChunkIntermediates` bundle
        (which applies the ghost drop) and delegates to
        :meth:`consume_intermediates`.  Callers already holding a bundle —
        the fused engine's map-reduce workers — skip straight there so the
        cleaning pass is shared rather than repeated.
        """
        if len(chunk) == 0:
            return
        self.consume_intermediates(
            ChunkIntermediates(chunk, self.clock, self.truncate_s)
        )

    def consume_intermediates(self, inter: ChunkIntermediates) -> None:
        """Fold one chunk's shared intermediates into the pass.

        No :class:`~repro.cdr.records.ConnectionRecord` objects are built.
        Order-independent statistics (histogram bins, day indices,
        HyperLogLog inserts) are vectorized; the order-sensitive float
        accumulators run in one tight loop over plain Python floats pulled
        from the arrays, applying exactly the operations the scalar path
        applies, in the same row order — hence bit-identical results.  The
        bundle must have been built against this analyzer's clock and
        truncation cutoff.
        """
        if inter.clock is not self.clock and inter.clock != self.clock:
            raise ValueError("intermediates built against a different clock")
        if inter.truncate_s != self.truncate_s:
            raise ValueError(
                "intermediates built against a different truncation cutoff"
            )
        self._n_ghosts += inter.n_ghosts
        n = inter.n
        if n == 0:
            return
        start = inter.start
        duration = inter.duration
        cell_id = inter.cell_id
        car_code = inter.car_code
        carrier_code = inter.carrier_code
        self._n_records += n
        start_min = float(start.min())
        start_max = float(start.max())
        if start_min < self._start_min:
            self._start_min = start_min
        if start_max > self._start_max:
            self._start_max = start_max

        # Histogram counts are pure integer additions: batch them.
        self._tail.add_many(duration)
        quantile_hist = self._quantile_hist
        if quantile_hist is not None:
            # Mergeable quantiles are histogram counts too: batch them.
            quantile_hist.add_many(duration)

        # Distinct cars/cells per day: HLL registers are maxima, so inserts
        # are idempotent and order-free — insert each (day, id) pair once.
        # The bundle's study-day indices use float day arithmetic, dodging
        # int64 overflow on absurd timestamps while comparing exactly like
        # the scalar path's arbitrary-precision ints.
        in_study = inter.in_study
        if bool(np.any(in_study)):
            study_days = inter.study_day
            study_cars = car_code[in_study]
            study_cells = cell_id[in_study]
            car_vocab = inter.car_ids
            for day in np.unique(study_days).tolist():
                sel = study_days == day
                car_sketch = self._cars_per_day[day]
                for code in np.unique(study_cars[sel]).tolist():
                    car_sketch.add(car_vocab[code])
                cell_sketch = self._cells_per_day[day]
                for cell in np.unique(study_cells[sel]).tolist():
                    cell_sketch.add(str(cell))

        # Order-sensitive accumulators: plain floats, scalar op order.
        starts = start.tolist()
        durations = duration.tolist()
        truncs = inter.trunc_duration.tolist()
        car_names = [inter.car_ids[code] for code in car_code.tolist()]
        carrier_names = [inter.carriers[code] for code in carrier_code.tolist()]
        use_p2 = quantile_hist is None
        median_add = self._median.add
        p73_add = self._p73.add
        mean_full_add = self._mean_full.add
        mean_trunc_add = self._mean_trunc.add
        carrier_time = self._carrier_time
        car_end = self._car_end
        car_total = self._car_total
        track = self.track_partials
        note_new = self._note_new_interval
        note_extension = self._note_extension
        neg_inf = float("-inf")
        total_time = self._total_time
        for i in range(n):
            dur = durations[i]
            cap = truncs[i]
            if use_p2:
                median_add(dur)
                p73_add(dur)
            mean_full_add(dur)
            mean_trunc_add(cap)
            carrier = carrier_names[i]
            carrier_time[carrier] = carrier_time.get(carrier, 0.0) + dur
            total_time += dur
            car = car_names[i]
            begin = starts[i]
            end = begin + cap
            prev_end = car_end.get(car, neg_inf)
            if begin >= prev_end:
                car_total[car] = car_total.get(car, 0.0) + cap
                car_end[car] = end
                if track:
                    note_new(car, begin, end)
            elif end > prev_end:
                car_total[car] += end - prev_end
                car_end[car] = end
                if track:
                    note_extension(car, end)
        self._total_time = total_time

    def finalize(self) -> StreamingResult:
        """Assemble the result from the accumulated pass state.

        A pass that kept no records (empty trace, or ghosts only — a legal
        outcome for individual shards at scale) finalizes to a well-defined
        empty result with zeroed statistics rather than raising.
        """
        clock = self.clock
        if self._n_records == 0:
            return StreamingResult(
                n_records=0,
                n_ghosts_dropped=self._n_ghosts,
                duration_median=0.0,
                duration_p73=0.0,
                duration_mean_full=0.0,
                duration_mean_truncated=0.0,
                fraction_over_cutoff=0.0,
                mean_connect_share_truncated=0.0,
                distinct_cars_per_day=np.zeros(clock.n_days),
                distinct_cells_per_day=np.zeros(clock.n_days),
                carrier_time_fraction={},
            )
        quantile_hist = self._quantile_hist
        if quantile_hist is None:
            median = self._median.value
            p73 = self._p73.value
        else:
            median = quantile_hist.quantile(0.5)
            p73 = quantile_hist.quantile(0.73)
        total_time = self._total_time
        shares = np.asarray(list(self._car_total.values())) / clock.duration
        return StreamingResult(
            n_records=self._n_records,
            n_ghosts_dropped=self._n_ghosts,
            duration_median=median,
            duration_p73=p73,
            duration_mean_full=self._mean_full.mean,
            duration_mean_truncated=self._mean_trunc.mean,
            fraction_over_cutoff=self._tail.fraction_above(self.truncate_s),
            mean_connect_share_truncated=(
                float(shares.mean()) if shares.size else 0.0
            ),
            distinct_cars_per_day=np.asarray(
                [sketch.estimate() for sketch in self._cars_per_day]
            ),
            distinct_cells_per_day=np.asarray(
                [sketch.estimate() for sketch in self._cells_per_day]
            ),
            carrier_time_fraction={
                c: (t / total_time if total_time else 0.0)
                for c, t in sorted(self._carrier_time.items())
            },
        )

    def export_partial(self) -> StreamingPartial:
        """Snapshot the accumulator state as a picklable partial.

        Requires ``quantile_mode="histogram"`` and ``track_partials=True``.
        The partial shares state with this analyzer — call :meth:`begin`
        (or discard the analyzer) before reusing it for another pass.
        """
        if self._quantile_hist is None or not self.track_partials:
            raise ValueError(
                "export_partial requires StreamingAnalyzer("
                "quantile_mode='histogram', track_partials=True)"
            )
        return StreamingPartial(
            n_records=self._n_records,
            n_ghosts=self._n_ghosts,
            truncate_s=self.truncate_s,
            start_min=self._start_min,
            start_max=self._start_max,
            quantile_hist=self._quantile_hist,
            mean_full=self._mean_full,
            mean_trunc=self._mean_trunc,
            tail=self._tail,
            car_total=self._car_total,
            car_end=self._car_end,
            car_head=self._car_head,
            cars_per_day=self._cars_per_day,
            cells_per_day=self._cells_per_day,
            carrier_time=self._carrier_time,
            total_time=self._total_time,
        )

    def absorb_partial(self, partial: StreamingPartial) -> None:
        """Fold one shard's partial into this analyzer's accumulators.

        Partials must arrive in global start order: each partial's records
        must all start at or after everything already absorbed (validated
        through the recorded start spans).  Counts, histogram bins and
        HyperLogLog registers merge exactly; the float sums (means, carrier
        time, per-car totals) merge deterministically — the same partials
        folded in the same order always reproduce the same bits — and agree
        with a serial pass to float-reassociation precision.

        The per-car connected time is merged exactly (in real arithmetic):
        the incoming total already counts ``|union(shard intervals)|``, so
        the overlap of the shard's head intervals with the accumulated
        high-water mark is subtracted, and the mark advances to the max.
        """
        quantile_hist = self._quantile_hist
        if quantile_hist is None:
            raise ValueError(
                "absorb_partial requires quantile_mode='histogram' "
                "(P-squared marker state cannot be merged)"
            )
        if partial.truncate_s != self.truncate_s:
            raise ValueError(
                f"truncate_s mismatch: analyzer has {self.truncate_s}, "
                f"partial has {partial.truncate_s}"
            )
        if len(partial.cars_per_day) != self.clock.n_days:
            raise ValueError(
                f"study length mismatch: analyzer has {self.clock.n_days} "
                f"days, partial has {len(partial.cars_per_day)}"
            )
        if partial.n_records and partial.start_min < self._start_max:
            raise ValueError(
                "partial absorbed out of order: its records start at "
                f"{partial.start_min}, before already-absorbed records "
                f"ending at start {self._start_max}"
            )

        self._n_records += partial.n_records
        self._n_ghosts += partial.n_ghosts
        if partial.start_min < self._start_min:
            self._start_min = partial.start_min
        if partial.start_max > self._start_max:
            self._start_max = partial.start_max
        quantile_hist.merge(partial.quantile_hist)
        self._mean_full.merge(partial.mean_full)
        self._mean_trunc.merge(partial.mean_trunc)
        self._tail.merge(partial.tail)
        for day, sketch in enumerate(partial.cars_per_day):
            self._cars_per_day[day].merge(sketch)
        for day, sketch in enumerate(partial.cells_per_day):
            self._cells_per_day[day].merge(sketch)
        for carrier in sorted(partial.carrier_time):
            self._carrier_time[carrier] = (
                self._carrier_time.get(carrier, 0.0)
                + partial.carrier_time[carrier]
            )
        self._total_time += partial.total_time

        # Exact connected-time merge; see the method docstring.
        car_total = self._car_total
        car_end = self._car_end
        for car, incoming_total in partial.car_total.items():
            incoming_end = partial.car_end[car]
            acc_end = car_end.get(car)
            if acc_end is None:
                car_total[car] = incoming_total
                car_end[car] = incoming_end
                continue
            overlap = 0.0
            for interval in partial.car_head.get(car, []):
                s, e = interval
                if s < acc_end:
                    overlap += min(e, acc_end) - s
            car_total[car] = car_total[car] + incoming_total - overlap
            if incoming_end > acc_end:
                car_end[car] = incoming_end

    def run(self, records: Iterable[ConnectionRecord]) -> StreamingResult:
        """One-shot scalar pass: begin, consume the stream, finalize."""
        self.begin()
        self.consume(records)
        return self.finalize()

    def run_columnar(
        self, chunks: Iterable[ColumnarCDRBatch]
    ) -> StreamingResult:
        """One-shot columnar pass over cdrz chunks (or any columnar batches).

        Feed it :func:`repro.cdr.store.iter_cdrz_chunks` to analyze a
        sharded on-disk trace with bounded memory and zero record objects.
        """
        self.begin()
        for chunk in chunks:
            self.consume_columnar(chunk)
        return self.finalize()
