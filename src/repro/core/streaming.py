"""Out-of-core (single-pass) versions of the headline analyses.

At the paper's scale — 1.1 billion CDRs — the in-memory pipeline of
:mod:`repro.core.pipeline` does not apply; an analyst streams the CDR feed
once and keeps bounded state.  :class:`StreamingAnalyzer` consumes any
iterator of :class:`~repro.cdr.records.ConnectionRecord` (e.g. straight from
:func:`repro.cdr.io.read_records_csv`) and produces:

* Figure 9's duration statistics (P-squared median / p73, Welford means,
  share above the 600 s truncation cutoff),
* Figure 3's per-car connected time (exact, state bounded by the number of
  *cars*, not records, using the sorted-stream overlap-merge trick),
* Figure 2's distinct cars / cells per day via HyperLogLog sketches,
* Table 3's carrier time shares.

Ghost records (exactly one hour) are dropped inline, mirroring Section 3.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.streaming import (
    HyperLogLog,
    P2Quantile,
    RunningMoments,
    StreamingHistogram,
)
from repro.algorithms.timebins import StudyClock
from repro.cdr.records import ConnectionRecord
from repro.core.preprocess import is_ghost_record


@dataclass(frozen=True)
class StreamingResult:
    """Summary produced by one streaming pass."""

    n_records: int
    n_ghosts_dropped: int
    duration_median: float
    duration_p73: float
    duration_mean_full: float
    duration_mean_truncated: float
    fraction_over_cutoff: float
    mean_connect_share_truncated: float
    distinct_cars_per_day: npt.NDArray[np.float64]
    distinct_cells_per_day: npt.NDArray[np.float64]
    carrier_time_fraction: dict[str, float]


class StreamingAnalyzer:
    """Single-pass analyzer over a chronologically sorted record stream.

    Parameters
    ----------
    clock:
        Study calendar.
    truncate_s:
        The Section 3 truncation cutoff applied to the truncated statistics.
    hll_precision:
        Precision of the per-day HyperLogLog sketches (12 -> ~1.6% error).
    """

    def __init__(
        self,
        clock: StudyClock,
        truncate_s: float = 600.0,
        hll_precision: int = 12,
    ) -> None:
        self.clock = clock
        self.truncate_s = truncate_s
        self._hll_precision = hll_precision

    def run(self, records: Iterable[ConnectionRecord]) -> StreamingResult:
        """Consume the stream and assemble the result.

        The per-car connected-time accumulator relies on the stream being
        sorted by start time (as every writer in :mod:`repro.cdr.io`
        produces): overlapping records of one car merge exactly via a
        per-car high-water mark.
        """
        clock = self.clock
        n_records = 0
        n_ghosts = 0
        median = P2Quantile(0.5)
        p73 = P2Quantile(0.73)
        mean_full = RunningMoments()
        mean_trunc = RunningMoments()
        tail = StreamingHistogram(bin_width=self.truncate_s)

        # Per-car connected time with overlap merge; state is O(cars).
        car_end: dict[str, float] = {}
        car_total: dict[str, float] = {}

        cars_per_day = [
            HyperLogLog(self._hll_precision) for _ in range(clock.n_days)
        ]
        cells_per_day = [
            HyperLogLog(self._hll_precision) for _ in range(clock.n_days)
        ]
        carrier_time: dict[str, float] = {}
        total_time = 0.0

        for rec in records:
            if is_ghost_record(rec):
                n_ghosts += 1
                continue
            n_records += 1

            duration = rec.duration
            truncated = min(duration, self.truncate_s)
            median.add(duration)
            p73.add(duration)
            mean_full.add(duration)
            mean_trunc.add(truncated)
            tail.add(duration)

            carrier_time[rec.carrier] = carrier_time.get(rec.carrier, 0.0) + duration
            total_time += duration

            day = clock.day_index(rec.start)
            if 0 <= day < clock.n_days:
                cars_per_day[day].add(rec.car_id)
                cells_per_day[day].add(str(rec.cell_id))

            # Exact union of truncated intervals for the car.
            end = rec.start + truncated
            prev_end = car_end.get(rec.car_id, float("-inf"))
            if rec.start >= prev_end:
                car_total[rec.car_id] = car_total.get(rec.car_id, 0.0) + truncated
                car_end[rec.car_id] = end
            elif end > prev_end:
                car_total[rec.car_id] += end - prev_end
                car_end[rec.car_id] = end

        if n_records == 0:
            raise ValueError("record stream contained no usable records")

        shares = np.asarray(list(car_total.values())) / clock.duration
        return StreamingResult(
            n_records=n_records,
            n_ghosts_dropped=n_ghosts,
            duration_median=median.value,
            duration_p73=p73.value,
            duration_mean_full=mean_full.mean,
            duration_mean_truncated=mean_trunc.mean,
            fraction_over_cutoff=tail.fraction_above(self.truncate_s),
            mean_connect_share_truncated=float(shares.mean()),
            distinct_cars_per_day=np.asarray(
                [sketch.estimate() for sketch in cars_per_day]
            ),
            distinct_cells_per_day=np.asarray(
                [sketch.estimate() for sketch in cells_per_day]
            ),
            carrier_time_fraction={
                c: (t / total_time if total_time else 0.0)
                for c, t in sorted(carrier_time.items())
            },
        )
