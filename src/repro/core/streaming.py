"""Out-of-core (single-pass) versions of the headline analyses.

At the paper's scale — 1.1 billion CDRs — the in-memory pipeline of
:mod:`repro.core.pipeline` does not apply; an analyst streams the CDR feed
once and keeps bounded state.  :class:`StreamingAnalyzer` consumes either an
iterator of :class:`~repro.cdr.records.ConnectionRecord` (e.g. straight from
:func:`repro.cdr.io.read_records_csv`) or — much faster — columnar chunks
from :func:`repro.cdr.store.iter_cdrz_chunks`, and produces:

* Figure 9's duration statistics (P-squared median / p73, Welford means,
  share above the 600 s truncation cutoff),
* Figure 3's per-car connected time (exact, state bounded by the number of
  *cars*, not records, using the sorted-stream overlap-merge trick),
* Figure 2's distinct cars / cells per day via HyperLogLog sketches,
* Table 3's carrier time shares.

Ghost records (exactly one hour) are dropped inline, mirroring Section 3.

The columnar path (:meth:`StreamingAnalyzer.consume_columnar`) is
bit-identical to the scalar path by construction: every order-sensitive
float accumulator (P², Welford, carrier and per-car running sums) is still
updated sequentially in row order with the very same operations, while only
the order-*independent* work is vectorized — the ghost mask, the duration
cap, the day indices, the histogram counter and the HyperLogLog register
maxima (duplicate inserts are no-ops, so per-day unique inserts suffice).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.streaming import (
    HyperLogLog,
    P2Quantile,
    RunningMoments,
    StreamingHistogram,
)
from repro.algorithms.timebins import DAY, StudyClock
from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.records import ConnectionRecord
from repro.core.preprocess import (
    GHOST_DURATION_S,
    GHOST_TOLERANCE_S,
    is_ghost_record,
)


@dataclass(frozen=True)
class StreamingResult:
    """Summary produced by one streaming pass."""

    n_records: int
    n_ghosts_dropped: int
    duration_median: float
    duration_p73: float
    duration_mean_full: float
    duration_mean_truncated: float
    fraction_over_cutoff: float
    mean_connect_share_truncated: float
    distinct_cars_per_day: npt.NDArray[np.float64]
    distinct_cells_per_day: npt.NDArray[np.float64]
    carrier_time_fraction: dict[str, float]


class StreamingAnalyzer:
    """Single-pass analyzer over a chronologically sorted record stream.

    Use :meth:`run` (scalar records) or :meth:`run_columnar` (cdrz chunks)
    for one-shot passes, or drive a pass yourself with :meth:`begin`, any
    mix of :meth:`consume` / :meth:`consume_columnar` calls, and
    :meth:`finalize`.  Both ingestion paths fold into the same accumulator
    state, so they can even be interleaved within one pass (e.g. a legacy
    CSV day followed by cdrz shards); whatever the mix, the combined row
    stream must stay globally sorted by start time for the per-car
    overlap-merge to stay exact.

    Parameters
    ----------
    clock:
        Study calendar.
    truncate_s:
        The Section 3 truncation cutoff applied to the truncated statistics.
    hll_precision:
        Precision of the per-day HyperLogLog sketches (12 -> ~1.6% error).
    """

    def __init__(
        self,
        clock: StudyClock,
        truncate_s: float = 600.0,
        hll_precision: int = 12,
    ) -> None:
        self.clock = clock
        self.truncate_s = truncate_s
        self._hll_precision = hll_precision
        self.begin()

    def begin(self) -> None:
        """Reset all accumulator state for a fresh pass."""
        clock = self.clock
        self._n_records = 0
        self._n_ghosts = 0
        self._median = P2Quantile(0.5)
        self._p73 = P2Quantile(0.73)
        self._mean_full = RunningMoments()
        self._mean_trunc = RunningMoments()
        self._tail = StreamingHistogram(bin_width=self.truncate_s)
        # Per-car connected time with overlap merge; state is O(cars).
        self._car_end: dict[str, float] = {}
        self._car_total: dict[str, float] = {}
        self._cars_per_day = [
            HyperLogLog(self._hll_precision) for _ in range(clock.n_days)
        ]
        self._cells_per_day = [
            HyperLogLog(self._hll_precision) for _ in range(clock.n_days)
        ]
        self._carrier_time: dict[str, float] = {}
        self._total_time = 0.0

    def consume(self, records: Iterable[ConnectionRecord]) -> None:
        """Fold scalar records into the pass, one at a time.

        The per-car connected-time accumulator relies on the stream being
        sorted by start time (as every writer in :mod:`repro.cdr.io`
        produces): overlapping records of one car merge exactly via a
        per-car high-water mark.
        """
        clock = self.clock
        for rec in records:
            if is_ghost_record(rec):
                self._n_ghosts += 1
                continue
            self._n_records += 1

            duration = rec.duration
            truncated = min(duration, self.truncate_s)
            self._median.add(duration)
            self._p73.add(duration)
            self._mean_full.add(duration)
            self._mean_trunc.add(truncated)
            self._tail.add(duration)

            self._carrier_time[rec.carrier] = (
                self._carrier_time.get(rec.carrier, 0.0) + duration
            )
            self._total_time += duration

            day = clock.day_index(rec.start)
            if 0 <= day < clock.n_days:
                self._cars_per_day[day].add(rec.car_id)
                self._cells_per_day[day].add(str(rec.cell_id))

            # Exact union of truncated intervals for the car.
            end = rec.start + truncated
            prev_end = self._car_end.get(rec.car_id, float("-inf"))
            if rec.start >= prev_end:
                self._car_total[rec.car_id] = (
                    self._car_total.get(rec.car_id, 0.0) + truncated
                )
                self._car_end[rec.car_id] = end
            elif end > prev_end:
                self._car_total[rec.car_id] += end - prev_end
                self._car_end[rec.car_id] = end

    def consume_columnar(self, chunk: ColumnarCDRBatch) -> None:
        """Fold one columnar chunk into the pass, bit-identical to scalar.

        No :class:`~repro.cdr.records.ConnectionRecord` objects are built.
        Order-independent statistics (ghost mask, histogram bins, day
        indices, HyperLogLog inserts) are vectorized; the order-sensitive
        float accumulators run in one tight loop over plain Python floats
        pulled from the arrays, applying exactly the operations the scalar
        path applies, in the same row order — hence bit-identical results.
        """
        if len(chunk) == 0:
            return
        duration = chunk.duration
        ghost = np.abs(duration - GHOST_DURATION_S) <= GHOST_TOLERANCE_S
        n_ghosts = int(np.count_nonzero(ghost))
        self._n_ghosts += n_ghosts
        if n_ghosts:
            keep = ~ghost
            duration = duration[keep]
            start = chunk.start[keep]
            cell_id = chunk.cell_id[keep]
            car_code = chunk.car_code[keep]
            carrier_code = chunk.carrier_code[keep]
        else:
            start = chunk.start
            cell_id = chunk.cell_id
            car_code = chunk.car_code
            carrier_code = chunk.carrier_code
        n = len(duration)
        if n == 0:
            return
        self._n_records += n

        # Histogram counts are pure integer additions: batch them.
        self._tail.add_many(duration)

        # Distinct cars/cells per day: HLL registers are maxima, so inserts
        # are idempotent and order-free — insert each (day, id) pair once.
        # Float day indices dodge int64 overflow on absurd timestamps while
        # comparing exactly like the scalar path's arbitrary-precision ints.
        clock = self.clock
        day_f = np.floor_divide(start, DAY)
        in_study = (day_f >= 0.0) & (day_f < clock.n_days)
        if bool(np.any(in_study)):
            study_days = day_f[in_study].astype(np.int64)
            study_cars = car_code[in_study]
            study_cells = cell_id[in_study]
            car_vocab = chunk.car_ids
            for day in np.unique(study_days).tolist():
                sel = study_days == day
                car_sketch = self._cars_per_day[day]
                for code in np.unique(study_cars[sel]).tolist():
                    car_sketch.add(car_vocab[code])
                cell_sketch = self._cells_per_day[day]
                for cell in np.unique(study_cells[sel]).tolist():
                    cell_sketch.add(str(cell))

        # Order-sensitive accumulators: plain floats, scalar op order.
        truncated = np.minimum(duration, self.truncate_s)
        starts = start.tolist()
        durations = duration.tolist()
        truncs = truncated.tolist()
        car_names = [chunk.car_ids[code] for code in car_code.tolist()]
        carrier_names = [chunk.carriers[code] for code in carrier_code.tolist()]
        median_add = self._median.add
        p73_add = self._p73.add
        mean_full_add = self._mean_full.add
        mean_trunc_add = self._mean_trunc.add
        carrier_time = self._carrier_time
        car_end = self._car_end
        car_total = self._car_total
        neg_inf = float("-inf")
        total_time = self._total_time
        for i in range(n):
            dur = durations[i]
            cap = truncs[i]
            median_add(dur)
            p73_add(dur)
            mean_full_add(dur)
            mean_trunc_add(cap)
            carrier = carrier_names[i]
            carrier_time[carrier] = carrier_time.get(carrier, 0.0) + dur
            total_time += dur
            car = car_names[i]
            begin = starts[i]
            end = begin + cap
            prev_end = car_end.get(car, neg_inf)
            if begin >= prev_end:
                car_total[car] = car_total.get(car, 0.0) + cap
                car_end[car] = end
            elif end > prev_end:
                car_total[car] += end - prev_end
                car_end[car] = end
        self._total_time = total_time

    def finalize(self) -> StreamingResult:
        """Assemble the result from the accumulated pass state."""
        if self._n_records == 0:
            raise ValueError("record stream contained no usable records")
        clock = self.clock
        total_time = self._total_time
        shares = np.asarray(list(self._car_total.values())) / clock.duration
        return StreamingResult(
            n_records=self._n_records,
            n_ghosts_dropped=self._n_ghosts,
            duration_median=self._median.value,
            duration_p73=self._p73.value,
            duration_mean_full=self._mean_full.mean,
            duration_mean_truncated=self._mean_trunc.mean,
            fraction_over_cutoff=self._tail.fraction_above(self.truncate_s),
            mean_connect_share_truncated=float(shares.mean()),
            distinct_cars_per_day=np.asarray(
                [sketch.estimate() for sketch in self._cars_per_day]
            ),
            distinct_cells_per_day=np.asarray(
                [sketch.estimate() for sketch in self._cells_per_day]
            ),
            carrier_time_fraction={
                c: (t / total_time if total_time else 0.0)
                for c, t in sorted(self._carrier_time.items())
            },
        )

    def run(self, records: Iterable[ConnectionRecord]) -> StreamingResult:
        """One-shot scalar pass: begin, consume the stream, finalize."""
        self.begin()
        self.consume(records)
        return self.finalize()

    def run_columnar(
        self, chunks: Iterable[ColumnarCDRBatch]
    ) -> StreamingResult:
        """One-shot columnar pass over cdrz chunks (or any columnar batches).

        Feed it :func:`repro.cdr.store.iter_cdrz_chunks` to analyze a
        sharded on-disk trace with bounded memory and zero record objects.
        """
        self.begin()
        for chunk in chunks:
            self.consume_columnar(chunk)
        return self.finalize()
