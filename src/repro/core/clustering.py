"""Clustering of busy radios by concurrent-car profile (Figure 11).

The paper selects all cells whose average PRB utilization over a week is at
least 70% — very busy cells where FOTA downloads hurt most — builds a vector
of concurrent-car counts per 15-minute bin for each, and runs classic k-means,
which yields two clusters: nearly identical diurnal shape, but one cluster's
concurrency level is about five times the other's, and the low-concurrency
cluster is about four times larger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.kmeans import KMeans, KMeansResult, silhouette_score
from repro.algorithms.timebins import StudyClock
from repro.cdr.records import CDRBatch
from repro.core.concurrency import weekly_concurrency
from repro.network.load import CellLoadModel

#: The paper's selection threshold: mean weekly U_PRB of at least 70%.
BUSY_MEAN_THRESHOLD = 0.70


@dataclass(frozen=True)
class BusyCellClusters:
    """Outcome of the Figure 11 clustering."""

    cell_ids: list[int]
    vectors: npt.NDArray[np.float64]  # (n_cells, 672) mean weekly concurrency
    result: KMeansResult
    #: Cluster indices ordered by ascending mean concurrency level, so
    #: ``ordering[0]`` is the paper's Cluster 1 (low) and ``ordering[-1]``
    #: its Cluster 2 (high).
    ordering: tuple[int, ...]

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.result.k

    def cluster_cells(self, rank: int) -> list[int]:
        """Cell ids in the cluster with the ``rank``-th lowest level."""
        label = self.ordering[rank]
        return [cid for cid, lab in zip(self.cell_ids, self.result.labels) if lab == label]

    def cluster_mean_vector(self, rank: int) -> npt.NDArray[np.float64]:
        """Mean weekly concurrency vector of the ``rank``-th cluster."""
        label = self.ordering[rank]
        members = self.vectors[self.result.labels == label]
        out: npt.NDArray[np.float64] = members.mean(axis=0)
        return out

    def level(self, rank: int) -> float:
        """Mean concurrency level (over all bins) of the ``rank``-th cluster."""
        return float(self.cluster_mean_vector(rank).mean())

    def size(self, rank: int) -> int:
        """Number of cells in the ``rank``-th cluster."""
        label = self.ordering[rank]
        return int((self.result.labels == label).sum())

    def level_ratio(self) -> float:
        """Highest cluster level over lowest (the paper reports ~5x)."""
        low = self.level(0)
        high = self.level(self.k - 1)
        return float("inf") if low == 0 else high / low

    def size_ratio(self) -> float:
        """Lowest-level cluster size over highest's (the paper reports ~4x)."""
        high_size = self.size(self.k - 1)
        return float("inf") if high_size == 0 else self.size(0) / high_size

    def shape_correlation(self) -> float:
        """Pearson correlation between the two extreme clusters' shapes.

        The paper notes both clusters are "very similar in shape"; values
        near 1 confirm it.
        """
        a = self.cluster_mean_vector(0)
        b = self.cluster_mean_vector(self.k - 1)
        if a.std() == 0 or b.std() == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    def silhouette(self) -> float:
        """Silhouette score of the clustering (requires k >= 2)."""
        return silhouette_score(self.vectors, self.result.labels)


def select_busy_cells(
    model: CellLoadModel, mean_threshold: float = BUSY_MEAN_THRESHOLD
) -> list[int]:
    """Cells whose mean weekly utilization meets the paper's 70% bar."""
    return model.busy_cell_ids(mean_threshold)


def cluster_busy_cells(
    batch: CDRBatch,
    model: CellLoadModel,
    clock: StudyClock,
    k: int = 2,
    mean_threshold: float = BUSY_MEAN_THRESHOLD,
    seed: int = 0,
) -> BusyCellClusters:
    """Run the full Figure 11 pipeline.

    Selects busy cells, builds their mean-weekly concurrent-car vectors from
    aggregated sessions, and k-means-clusters the vectors.  Cells with no
    recorded car connections contribute all-zero vectors, exactly as they
    would in the paper's data.
    """
    cell_ids = select_busy_cells(model, mean_threshold)
    if len(cell_ids) < k:
        raise ValueError(
            f"only {len(cell_ids)} busy cells at threshold {mean_threshold}; "
            f"cannot form {k} clusters"
        )
    by_cell = batch.by_cell()
    vectors = np.stack(
        [weekly_concurrency(by_cell.get(cid, []), clock) for cid in cell_ids]
    )
    result = KMeans(k, seed=seed).fit(vectors)
    levels: list[float] = [
        float(vectors[result.labels == label].mean())
        if (result.labels == label).any()
        else 0.0
        for label in range(k)
    ]
    ordering = tuple(int(i) for i in np.argsort(levels))
    return BusyCellClusters(
        cell_ids=cell_ids, vectors=vectors, result=result, ordering=ordering
    )
