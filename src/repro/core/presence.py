"""Daily presence of cars and cells (Figure 2, Table 1).

For every study day, what percentage of all cars in the data set appeared on
the network, and what percentage of all ever-used cells saw at least one car?
The paper reports both series with weekly structure, OLS trend lines, and a
per-weekday mean/standard-deviation table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.algorithms.stats import TrendLine, linear_trend
from repro.algorithms.timebins import DAY, WEEKDAY_NAMES, StudyClock
from repro.cdr.columnar import ColumnarCDRBatch
from repro.cdr.records import CDRBatch


@dataclass(frozen=True)
class DailyPresence:
    """Per-day presence fractions over the study period.

    ``car_fraction[d]`` is the share of all cars (cars seen at least once in
    the whole study) that connected on day ``d``; ``cell_fraction[d]`` is the
    share of all ever-used cells that served at least one car on day ``d``.
    """

    clock: StudyClock
    car_fraction: npt.NDArray[np.float64]
    cell_fraction: npt.NDArray[np.float64]
    n_cars_total: int
    n_cells_total: int

    @property
    def car_trend(self) -> TrendLine:
        """OLS trend of the car series over day index (Figure 2 annotation)."""
        return linear_trend(np.arange(self.car_fraction.size), self.car_fraction)

    @property
    def cell_trend(self) -> TrendLine:
        """OLS trend of the cell series over day index."""
        return linear_trend(np.arange(self.cell_fraction.size), self.cell_fraction)


@dataclass(frozen=True)
class WeekdayRow:
    """One row of Table 1."""

    weekday: str
    cell_mean: float
    cell_std: float
    car_mean: float
    car_std: float


def daily_presence(batch: CDRBatch, clock: StudyClock) -> DailyPresence:
    """Compute the Figure 2 series from a (cleaned) batch.

    A record contributes its car and cell to every day its *start* falls on,
    matching CDR-day accounting (each record is logged on the day the
    connection began).
    """
    cars_by_day: list[set[str]] = [set() for _ in range(clock.n_days)]
    cells_by_day: list[set[int]] = [set() for _ in range(clock.n_days)]
    all_cars: set[str] = set()
    all_cells: set[int] = set()
    for rec in batch:
        day = clock.day_index(rec.start)
        if not 0 <= day < clock.n_days:
            continue
        cars_by_day[day].add(rec.car_id)
        cells_by_day[day].add(rec.cell_id)
        all_cars.add(rec.car_id)
        all_cells.add(rec.cell_id)
    n_cars = max(len(all_cars), 1)
    n_cells = max(len(all_cells), 1)
    return DailyPresence(
        clock=clock,
        car_fraction=np.asarray([len(s) / n_cars for s in cars_by_day]),
        cell_fraction=np.asarray([len(s) / n_cells for s in cells_by_day]),
        n_cars_total=len(all_cars),
        n_cells_total=len(all_cells),
    )


def daily_presence_columnar(
    col: ColumnarCDRBatch, clock: StudyClock
) -> DailyPresence:
    """Vectorized :func:`daily_presence` over a columnar batch.

    Counts distinct ``(day, car)`` and ``(day, cell)`` pairs with one
    ``np.unique`` over packed integer keys instead of a Python set-add per
    record.  Output is bit-identical to the reference: the per-day counts
    are exact integers and the closing division matches Python's
    ``len(s) / n`` (both are one correctly rounded IEEE division).
    """
    day = np.floor_divide(col.start, DAY).astype(np.int64)
    valid = (day >= 0) & (day < clock.n_days)
    days_v = day[valid]
    cars_v = col.car_code[valid].astype(np.int64)
    cells_v = col.cell_id[valid]

    n_car_vocab = max(len(col.car_ids), 1)
    car_pairs = np.unique(days_v * n_car_vocab + cars_v)
    car_counts = np.bincount(car_pairs // n_car_vocab, minlength=clock.n_days)
    n_cars_total = int(np.unique(cars_v).size)

    # Cell ids are arbitrary int64 values (possibly sparse), so densify them
    # before packing with the day index.
    cell_vocab, cell_codes = np.unique(cells_v, return_inverse=True)
    n_cell_vocab = max(int(cell_vocab.size), 1)
    cell_pairs = np.unique(days_v * n_cell_vocab + cell_codes)
    cell_counts = np.bincount(cell_pairs // n_cell_vocab, minlength=clock.n_days)
    n_cells_total = int(cell_vocab.size)

    return DailyPresence(
        clock=clock,
        car_fraction=car_counts / max(n_cars_total, 1),
        cell_fraction=cell_counts / max(n_cells_total, 1),
        n_cars_total=n_cars_total,
        n_cells_total=n_cells_total,
    )


def weekday_table(
    presence: DailyPresence, exclude_days: tuple[int, ...] = ()
) -> list[WeekdayRow]:
    """Table 1: per-weekday mean and standard deviation of both series.

    ``exclude_days`` removes known data-loss days from the statistics (the
    paper notes the loss does not affect overall results; excluding them
    here keeps the weekday means honest).  The returned list has eight rows:
    Monday..Sunday plus an "Overall" row, as in the paper.
    """
    rows: list[WeekdayRow] = []
    excluded = set(exclude_days)
    for wd in range(7):
        days = [d for d in presence.clock.days_of_weekday(wd) if d not in excluded]
        if not days:
            continue
        cells = presence.cell_fraction[days]
        cars = presence.car_fraction[days]
        rows.append(
            WeekdayRow(
                weekday=WEEKDAY_NAMES[wd],
                cell_mean=float(cells.mean()),
                cell_std=float(cells.std(ddof=0)),
                car_mean=float(cars.mean()),
                car_std=float(cars.std(ddof=0)),
            )
        )
    keep = [d for d in range(presence.clock.n_days) if d not in excluded]
    cells = presence.cell_fraction[keep]
    cars = presence.car_fraction[keep]
    rows.append(
        WeekdayRow(
            weekday="Overall",
            cell_mean=float(cells.mean()),
            cell_std=float(cells.std(ddof=0)),
            car_mean=float(cars.mean()),
            car_std=float(cars.std(ddof=0)),
        )
    )
    return rows
