"""The paper's analysis methodology (Sections 3 and 4).

Each module transcribes one analysis of the paper; ``pipeline`` runs them all
over a CDR batch plus cell-load series and produces an
:class:`~repro.core.pipeline.AnalysisReport` whose fields map one-to-one onto
the paper's tables and figures.
"""

from repro.core.busy import (
    BusyExposure,
    BusySchedule,
    busy_exposure,
    busy_exposure_columnar,
)
from repro.core.carclusters import BehaviourClusters, cluster_cars
from repro.core.carriers import CarrierUsage, carrier_usage, carrier_usage_columnar
from repro.core.clustering import BusyCellClusters, cluster_busy_cells
from repro.core.compare import compare_reports, format_comparison
from repro.core.concurrency import CellTimeline, cell_timeline, weekly_concurrency
from repro.core.connect_time import (
    ConnectTimeResult,
    connect_time_analysis,
    connect_time_analysis_columnar,
)
from repro.core.handover import (
    HandoverStats,
    handover_analysis,
    handover_analysis_columnar,
)
from repro.core.hograph import build_handover_graph, top_corridors
from repro.core.journeys import JourneyStats, reconstruct_journeys
from repro.core.mapreduce import MapReduceStats, MapSpec, analyze_shards, map_shard
from repro.core.matrices import (
    PeriodMasks,
    UsageMatrix,
    period_masks,
    usage_matrix,
)
from repro.core.odmatrix import ODMatrix, ZoneGrid, build_od_matrix
from repro.core.pipeline import AnalysisPipeline, AnalysisReport
from repro.core.preprocess import PreprocessConfig, PreprocessResult, preprocess
from repro.core.presence import (
    DailyPresence,
    daily_presence,
    daily_presence_columnar,
    weekday_table,
)
from repro.core.segmentation import (
    CarSegmentation,
    days_on_network,
    days_on_network_columnar,
    segment_cars,
)
from repro.core.stability import FleetStability, fleet_stability
from repro.core.streaming import (
    StreamingAnalyzer,
    StreamingPartial,
    StreamingResult,
)

__all__ = [
    "AnalysisPipeline",
    "AnalysisReport",
    "BehaviourClusters",
    "BusySchedule",
    "BusyCellClusters",
    "BusyExposure",
    "CarSegmentation",
    "FleetStability",
    "ODMatrix",
    "ZoneGrid",
    "CarrierUsage",
    "CellTimeline",
    "ConnectTimeResult",
    "DailyPresence",
    "HandoverStats",
    "JourneyStats",
    "MapReduceStats",
    "MapSpec",
    "PeriodMasks",
    "StreamingAnalyzer",
    "StreamingPartial",
    "StreamingResult",
    "PreprocessConfig",
    "PreprocessResult",
    "UsageMatrix",
    "analyze_shards",
    "build_handover_graph",
    "build_od_matrix",
    "map_shard",
    "compare_reports",
    "fleet_stability",
    "format_comparison",
    "busy_exposure",
    "busy_exposure_columnar",
    "carrier_usage",
    "carrier_usage_columnar",
    "cluster_cars",
    "cell_timeline",
    "cluster_busy_cells",
    "connect_time_analysis",
    "connect_time_analysis_columnar",
    "daily_presence",
    "daily_presence_columnar",
    "days_on_network",
    "days_on_network_columnar",
    "handover_analysis",
    "handover_analysis_columnar",
    "period_masks",
    "preprocess",
    "reconstruct_journeys",
    "top_corridors",
    "segment_cars",
    "usage_matrix",
    "weekday_table",
    "weekly_concurrency",
]
