"""Terminal visualization helpers.

The paper communicates through plots; a library reproduction that runs in a
terminal needs readable text renderings of the same shapes.  These helpers
cover every figure style used: sparklines and line-ish CDF plots (Figs 2, 3,
9), horizontal bar charts (Figs 6, 7), heatmaps (Figs 4, 5) and per-row
interval timelines (Fig 8).  All return plain strings; none import plotting
libraries.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from repro.algorithms.intervals import Interval

#: Eight-level block characters for sparklines.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"
#: Ten-level shade ramp for heatmaps.
SHADES = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """One-line block rendering of a numeric series.

    Values are min-max scaled; a constant series renders at the lowest
    level.  When ``width`` is given the series is mean-pooled down to it.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if width is not None and width > 0 and arr.size > width:
        step = arr.size / width
        arr = np.asarray(
            [arr[int(i * step) : max(int((i + 1) * step), int(i * step) + 1)].mean()
             for i in range(width)]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return SPARK_BLOCKS[0] * arr.size
    scaled = (arr - lo) / (hi - lo)
    return "".join(
        SPARK_BLOCKS[min(int(v * len(SPARK_BLOCKS)), len(SPARK_BLOCKS) - 1)]
        for v in scaled
    )


def hbar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError(
            f"labels and values differ in length: {len(labels)} vs {len(values)}"
        )
    if not labels:
        return ""
    peak = max(max(values), 1e-12)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{str(label):>{label_width}} | {fmt.format(value):>8} {bar}")
    return "\n".join(lines)


def heatmap(
    matrix: npt.NDArray[np.float64], col_labels: str = "M T W T F S S"
) -> str:
    """Shade-ramp rendering of a 2-D matrix (rows x columns).

    Built for 24x7 hour-of-week matrices but works for any small 2-D array;
    values are scaled by the matrix maximum.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {m.shape}")
    peak = m.max()
    lines = ["    " + col_labels] if col_labels else []
    for r in range(m.shape[0]):
        cells = []
        for c in range(m.shape[1]):
            level = 0 if peak == 0 else m[r, c] / peak
            cells.append(SHADES[min(int(level * (len(SHADES) - 1) + 0.5), 9)])
        lines.append(f"{r:>2}  " + " ".join(cells))
    return "\n".join(lines)


def cdf_plot(
    x: Sequence[float],
    p: Sequence[float],
    width: int = 60,
    height: int = 12,
) -> str:
    """Character-grid plot of a CDF (or any monotone series).

    The x axis spans ``[min(x), max(x)]``; each column plots the last sample
    falling into it.  Returns a plot with a 0..1 y axis gutter.
    """
    xa = np.asarray(x, dtype=float)
    pa = np.asarray(p, dtype=float)
    if xa.size != pa.size or xa.size == 0:
        raise ValueError("x and p must be equal-length and non-empty")
    lo, hi = float(xa.min()), float(xa.max())
    span = hi - lo or 1.0
    cols = np.full(width, np.nan)
    for xv, pv in zip(xa, pa):
        col = min(int((xv - lo) / span * (width - 1)), width - 1)
        cols[col] = pv
    # Forward-fill so the curve is continuous.
    last = 0.0
    for i in range(width):
        if np.isnan(cols[i]):
            cols[i] = last
        else:
            last = cols[i]
    grid = [[" "] * width for _ in range(height)]
    for i, pv in enumerate(cols):
        row = height - 1 - min(int(pv * (height - 1) + 0.5), height - 1)
        grid[row][i] = "*"
    lines = []
    for r, row in enumerate(grid):
        y = 1.0 - r / (height - 1)
        lines.append(f"{y:>4.1f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<.6g}{'':^{max(width - 24, 1)}}{hi:>.6g}")
    return "\n".join(lines)


def interval_timeline(
    rows: dict[str, list[Interval]],
    window_start: float,
    window_end: float,
    width: int = 96,
    max_rows: int = 40,
) -> str:
    """Figure 8-style timeline: one row per key, ticks where intervals sit.

    Rows beyond ``max_rows`` are summarized with a trailing count.
    """
    if window_end <= window_start:
        raise ValueError("window must have positive extent")
    span = window_end - window_start
    lines = []
    for i, (key, intervals) in enumerate(sorted(rows.items())):
        if i >= max_rows:
            lines.append(f"... and {len(rows) - max_rows} more rows")
            break
        cells = [" "] * width
        for iv in intervals:
            first = int((max(iv.start, window_start) - window_start) / span * width)
            last = int(
                (min(iv.end, window_end) - window_start - 1e-9) / span * width
            )
            for c in range(max(first, 0), min(last, width - 1) + 1):
                cells[c] = "-"
        lines.append(f"{key:>14} |{''.join(cells)}|")
    return "\n".join(lines)
